type t = { fd : Unix.file_descr; mutable leftover : string }

(* getaddrinfo so names ("localhost") work, not just numeric
   addresses; first IPv4 stream result wins *)
let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | { Unix.ai_addr; _ } :: _ -> ai_addr
  | [] -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let connect ?(host = "127.0.0.1") ~port () =
  let addr = resolve host port in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  { fd; leftover = "" }

let connect_unix path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; leftover = "" }

(* wrap an already-connected descriptor (e.g. one end of a
   socketpair) — how tests drive the protocol machinery with no
   listener *)
let of_fd fd = { fd; leftover = "" }

type response = { status : int; headers : (string * string) list; body : string }

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* a signal interrupting the write is not an error — same
             treatment the daemon gives an interrupted accept *)
          go off
  in
  go 0

let find_sub haystack needle from =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go from

(* Read until [buf] contains at least [target] bytes, or — when
   [target] is [None] — until it contains "\r\n\r\n". The header scan
   resumes where the previous one gave up (minus 3 bytes, in case the
   separator straddles a chunk boundary) instead of rescanning the
   whole buffer per chunk, which was quadratic in the head size. *)
let read_until t buf target =
  let chunk = Bytes.create 8192 in
  let scanned = ref 0 in
  let have_enough () =
    match target with
    | Some n -> Buffer.length buf >= n
    | None -> (
        match find_sub (Buffer.contents buf) "\r\n\r\n" !scanned with
        | Some _ -> true
        | None ->
            scanned := max 0 (Buffer.length buf - 3);
            false)
  in
  let rec go () =
    if have_enough () then Ok ()
    else
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed mid-response"
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | exception Sys_error m -> Error m
  in
  go ()

let ( let* ) = Result.bind

let parse_status_line line =
  match String.split_on_char ' ' line with
  | _http :: status :: _ -> (
      match int_of_string_opt status with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "malformed status line %S" line))
  | _ -> Error (Printf.sprintf "malformed status line %S" line)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Error "empty response head"
  | status_line :: header_lines ->
      let* status = parse_status_line (String.trim status_line) in
      let headers =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            match String.index_opt line ':' with
            | Some c ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 c),
                    String.trim
                      (String.sub line (c + 1) (String.length line - c - 1)) )
            | None -> None)
          header_lines
      in
      Ok (status, headers)

let read_response ?(head_only = false) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.leftover;
  t.leftover <- "";
  let* () = read_until t buf None in
  let all = Buffer.contents buf in
  let head_end = Option.get (find_sub all "\r\n\r\n" 0) in
  let* status, headers = parse_head (String.sub all 0 head_end) in
  let* length =
    (* a HEAD response declares the GET body's length but carries no
       bytes of it *)
    if head_only then Ok 0
    else
      match List.assoc_opt "content-length" headers with
      | None -> Ok 0
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Printf.sprintf "malformed Content-Length %S" v))
  in
  let body_start = head_end + 4 in
  let* () = read_until t buf (Some (body_start + length)) in
  let all = Buffer.contents buf in
  let body = String.sub all body_start length in
  (* keep-alive: bytes past this response belong to the next one *)
  let consumed = body_start + length in
  t.leftover <- String.sub all consumed (String.length all - consumed);
  Ok { status; headers; body }

let request t ?(headers = []) ?body meth target =
  let head = Buffer.create 256 in
  Buffer.add_string head
    (Printf.sprintf "%s %s HTTP/1.1\r\n" (Http.meth_to_string meth) target);
  Buffer.add_string head "Host: localhost\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string head (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  (match body with
  | Some b ->
      Buffer.add_string head
        (Printf.sprintf "Content-Length: %d\r\n" (String.length b))
  | None -> ());
  Buffer.add_string head "\r\n";
  Option.iter (Buffer.add_string head) body;
  match write_all t.fd (Buffer.contents head) with
  | () -> read_response ~head_only:(meth = Http.HEAD) t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error m -> Error m

let get t target = request t Http.GET target
let post t target ~body = request t ~body Http.POST target

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Retries                                                            *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default_policy =
  {
    max_attempts = 6;
    base_delay = 0.05;
    multiplier = 2.0;
    max_delay = 2.0;
    jitter = 0.2;
  }

let retryable_status status = status = 408 || status = 429 || status = 503

(* A server-sent [Retry-After: seconds] is authoritative: the server
   knows its own drain or promotion timeline better than our jitter
   schedule, so it becomes a floor under the computed backoff.
   (HTTP-date values are ignored — the daemon only sends seconds.) *)
let retry_after r =
  Option.bind (List.assoc_opt "retry-after" r.headers) (fun v ->
      match int_of_string_opt (String.trim v) with
      | Some s when s >= 0 -> Some (float_of_int s)
      | _ -> None)

(* floor the backoff at the server's word, when it gave one *)
let floored_delay outcome backoff =
  match outcome with
  | Ok r -> (
      match retry_after r with
      | Some floor -> Float.max floor backoff
      | None -> backoff)
  | Error _ -> backoff

(* a 421 carrying Retry-After is a transient rejection (a promotion in
   flight, a fleet reconfiguring): worth re-asking the same endpoint,
   unlike a bare 421 which can never change without a redirect *)
let retryable_outcome outcome =
  match outcome with
  | Ok r -> retryable_status r.status || (r.status = 421 && retry_after r <> None)
  | Error _ -> true

(* ------------------------------------------------------------------ *)
(* Replica awareness                                                  *)
(* ------------------------------------------------------------------ *)

(* A replica's mutation rejection: 421 with the primary's address in
   the error object. 421 is deliberately NOT retryable — asking the
   same replica again can never succeed — so a plain caller fails
   fast; [~follow_primary] turns the address into a redirect. *)
let read_only_primary r =
  if r.status <> 421 then None
  else
    match Jsonlight.of_string r.body with
    | Error _ -> None
    | Ok json ->
        Option.bind (Jsonlight.member "error" json) (fun e ->
            Option.bind (Jsonlight.member "primary" e) Jsonlight.string_opt)

(* "HOST:PORT" — split on the LAST colon so a future bracketed host
   at least fails closed instead of mis-parsing *)
let split_address s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && host <> "" -> Some (host, p)
      | Some _ | None -> None)

let redirect_target r =
  Option.bind (read_only_primary r) split_address

let connect_to (host, port) = connect ~host ~port ()

(* Exponential growth capped at [max_delay], then shrunk by up to
   [jitter] of itself so a herd of retrying clients spreads out. The
   rng threads through, so a fixed seed gives a fixed schedule. *)
let delay_for policy rng attempt =
  let raw = policy.base_delay *. (policy.multiplier ** float_of_int attempt) in
  let capped = Float.min policy.max_delay raw in
  capped *. (1.0 -. (policy.jitter *. Random.State.float rng 1.0))

let backoff_schedule ?(seed = 0) policy =
  let rng = Random.State.make [| seed |] in
  let rec go i acc =
    if i >= policy.max_attempts - 1 then List.rev acc
    else go (i + 1) (delay_for policy rng i :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Persistent connections                                             *)
(* ------------------------------------------------------------------ *)

type persistent = {
  reconnect : unit -> t;
  connect_redirect : string * int -> t;
  policy : retry_policy;
  sleep : float -> unit;
  rng : Random.State.t;
  follow_primary : bool;
  mutable conn : t option;
  (* once a read-only rejection advertised the primary, connect there
     instead of through [reconnect] *)
  mutable redirect : (string * int) option;
}

let persistent ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ?(follow_primary = false) ?(connect_to = connect_to) connect =
  {
    reconnect = connect;
    connect_redirect = connect_to;
    policy;
    sleep;
    rng = Random.State.make [| seed |];
    follow_primary;
    conn = None;
    redirect = None;
  }

let drop_conn p =
  (match p.conn with Some t -> close t | None -> ());
  p.conn <- None

let persistent_close = drop_conn

let call p f =
  let obtain () =
    match p.conn with
    | Some t -> Ok t
    | None -> (
        let fresh () =
          match p.redirect with
          | Some target -> p.connect_redirect target
          | None -> p.reconnect ()
        in
        match fresh () with
        | t ->
            p.conn <- Some t;
            Ok t
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  let once () =
    match obtain () with
    | Error _ as e -> e
    | Ok t -> (
        match f t with
        | Ok r ->
            (* the daemon announces it will close (request cap, drain):
               drop the connection now so the next call reconnects
               instead of failing into a retry *)
            (match List.assoc_opt "connection" r.headers with
            | Some v
              when String.lowercase_ascii (String.trim v) = "close" ->
                drop_conn p
            | Some _ | None -> ());
            Ok r
        | Error _ as e ->
            (* torn connection: whatever state it held is unusable *)
            drop_conn p;
            e)
  in
  let rec attempt i =
    let outcome = once () in
    let retry () =
      if i + 1 >= p.policy.max_attempts then outcome
      else begin
        p.sleep (floored_delay outcome (delay_for p.policy p.rng i));
        attempt (i + 1)
      end
    in
    match outcome with
    | Ok r
      when p.follow_primary && redirect_target r <> None
           && i + 1 < p.policy.max_attempts ->
        (* reconnect to the advertised primary; counts as an attempt
           but skips the backoff — the primary is a different host,
           not a recovering one *)
        p.redirect <- redirect_target r;
        drop_conn p;
        attempt (i + 1)
    | Ok _ when retryable_outcome outcome -> retry ()
    | Ok _ -> outcome
    | Error _ -> retry ()
  in
  attempt 0

let with_retry ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ?(follow_primary = false) ?(connect_to = connect_to) ~connect f =
  let rng = Random.State.make [| seed |] in
  let redirect = ref None in
  let once () =
    let fresh () =
      match !redirect with
      | Some target -> connect_to target
      | None -> connect ()
    in
    match fresh () with
    | exception Unix.Unix_error (e, _, _) ->
        (* connect refused/reset: the daemon may be restarting *)
        Error (Unix.error_message e)
    | t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
  in
  let rec attempt i =
    let outcome = once () in
    let retry () =
      if i + 1 >= policy.max_attempts then outcome
      else begin
        sleep (floored_delay outcome (delay_for policy rng i));
        attempt (i + 1)
      end
    in
    match outcome with
    | Ok r
      when follow_primary && redirect_target r <> None
           && i + 1 < policy.max_attempts ->
        redirect := redirect_target r;
        attempt (i + 1)
    | Ok _ when retryable_outcome outcome -> retry ()
    | Ok _ -> outcome
    | Error _ -> retry ()
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Replication status                                                 *)
(* ------------------------------------------------------------------ *)

type replication = {
  role : string;
  primary : string option;
  applied_seq : int64;
  covered_seq : int64;
  lag : int64;
}

let replication t =
  let* r = get t "/replication" in
  if r.status <> 200 then
    Error (Printf.sprintf "GET /replication answered %d" r.status)
  else
    let* json = Jsonlight.of_string r.body in
    let str name = Option.bind (Jsonlight.member name json) Jsonlight.string_opt in
    let int64 name =
      match Option.bind (Jsonlight.member name json) Jsonlight.int_opt with
      | Some i -> Int64.of_int i
      | None -> 0L
    in
    match str "role" with
    | None -> Error "malformed /replication response: no \"role\""
    | Some role ->
        Ok
          {
            role;
            primary = str "primary";
            applied_seq = int64 "applied_seq";
            covered_seq = int64 "covered_seq";
            lag = int64 "lag";
          }

(* ------------------------------------------------------------------ *)
(* Replica sets                                                       *)
(* ------------------------------------------------------------------ *)

(* Client-side failover over a fleet of endpoints: reads spread
   round-robin across healthy replicas (and the primary), mutations
   chase the advertised primary. One connection per operation — the
   point of the abstraction is placement, not connection reuse. *)

type endpoint = {
  addr : string * int;
  mutable healthy : bool;  (* as of the last probe or operation *)
  mutable last_lag : int64;  (* as of the last probe; -1 = never *)
}

type replica_set = {
  endpoints : endpoint array;
  rs_policy : retry_policy;
  rs_seed : int;
  rs_sleep : float -> unit;
  rs_rng : Random.State.t;
  rs_connect : string * int -> t;
  max_lag : int64;
  mutable rr : int;  (* round-robin cursor for reads *)
  mutable primary : (string * int) option;  (* best known, for mutations *)
  mutable probed : bool;
}

let replica_set ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ?(connect_to = connect_to) ?(max_lag = 1024L) endpoints =
  if endpoints = [] then invalid_arg "Client.replica_set: no endpoints";
  {
    endpoints =
      Array.of_list
        (List.map
           (fun addr -> { addr; healthy = true; last_lag = -1L })
           endpoints);
    rs_policy = policy;
    rs_seed = seed;
    rs_sleep = sleep;
    rs_rng = Random.State.make [| seed |];
    rs_connect = connect_to;
    max_lag;
    rr = 0;
    primary = None;
    probed = false;
  }

(* One [GET /replication] per endpoint: reachability, role, and lag.
   A replica further behind than [max_lag] is healthy enough to exist
   but not to serve reads. The probe also learns where mutations go —
   an endpoint answering as primary wins; failing that, any replica's
   advertised upstream is better than nothing. *)
let probe rs =
  rs.probed <- true;
  let advertised = ref None in
  Array.iter
    (fun ep ->
      match rs.rs_connect ep.addr with
      | exception _ -> ep.healthy <- false
      | c ->
          Fun.protect
            ~finally:(fun () -> close c)
            (fun () ->
              match replication c with
              | Ok r ->
                  ep.last_lag <- r.lag;
                  if r.role = "primary" then begin
                    ep.healthy <- true;
                    rs.primary <- Some ep.addr
                  end
                  else begin
                    ep.healthy <- r.lag <= rs.max_lag;
                    match Option.bind r.primary split_address with
                    | Some a when !advertised = None -> advertised := Some a
                    | _ -> ()
                  end
              | Error _ -> ep.healthy <- false))
    rs.endpoints;
  match (rs.primary, !advertised) with
  | None, Some a -> rs.primary <- Some a
  | _ -> ()

let ensure_probed rs = if not rs.probed then probe rs

let healthy_endpoints rs =
  ensure_probed rs;
  Array.to_list rs.endpoints
  |> List.filter_map (fun ep -> if ep.healthy then Some ep.addr else None)

(* candidates for one read pass: healthy endpoints from the rotation
   cursor onward, then the unhealthy ones — when every good hop is
   down, the marked-dead ones get their chance to have healed *)
let read_candidates rs =
  let n = Array.length rs.endpoints in
  let rotated = List.init n (fun k -> rs.endpoints.((rs.rr + k) mod n)) in
  List.filter (fun ep -> ep.healthy) rotated
  @ List.filter (fun ep -> not ep.healthy) rotated

let read rs f =
  ensure_probed rs;
  let try_one ep =
    match rs.rs_connect ep.addr with
    | exception Unix.Unix_error (e, _, _) ->
        ep.healthy <- false;
        Error (Unix.error_message e)
    | c -> (
        match Fun.protect ~finally:(fun () -> close c) (fun () -> f c) with
        | Error _ as e ->
            (* the hop died mid-request: mark it and move to a sibling *)
            ep.healthy <- false;
            e
        | Ok r when retryable_status r.status -> Ok r
        | Ok r ->
            ep.healthy <- true;
            Ok r)
  in
  (* one pass = at most one request per endpoint, siblings tried
     back-to-back with no backoff (they are different hosts); between
     passes the usual jittered backoff, floored by any Retry-After *)
  let rec pass i =
    let rec over candidates last =
      match candidates with
      | [] -> last
      | ep :: rest -> (
          match try_one ep with
          | Ok r when not (retryable_status r.status) ->
              let n = Array.length rs.endpoints in
              (* advance the rotation past the endpoint that answered *)
              Array.iteri
                (fun k e -> if e == ep then rs.rr <- (k + 1) mod n)
                rs.endpoints;
              Ok r
          | outcome -> over rest outcome)
    in
    let outcome = over (read_candidates rs) (Error "no endpoints") in
    match outcome with
    | Ok r when not (retryable_status r.status) -> outcome
    | _ ->
        if i + 1 >= rs.rs_policy.max_attempts then outcome
        else begin
          rs.rs_sleep (floored_delay outcome (delay_for rs.rs_policy rs.rs_rng i));
          (* everything failed: the fleet may have reshaped under us *)
          probe rs;
          pass (i + 1)
        end
  in
  pass 0

(* mutations chase the primary: first try the best-known address, then
   rotate through the fleet, letting 421 redirects point the way. The
   endpoint (or redirect target) that finally accepted is remembered
   as the primary for next time. *)
let mutate rs f =
  ensure_probed rs;
  let n = Array.length rs.endpoints in
  let tried = ref (-1) in
  let last_target = ref None in
  let remember target =
    last_target := Some target;
    rs.rs_connect target
  in
  let next_target () =
    incr tried;
    match rs.primary with
    | Some a when !tried = 0 -> a
    | _ ->
        let skip = if rs.primary = None then 0 else 1 in
        rs.endpoints.((!tried - skip + rs.rr) mod n).addr
  in
  let outcome =
    with_retry ~policy:rs.rs_policy ~seed:rs.rs_seed ~sleep:rs.rs_sleep
      ~follow_primary:true ~connect_to:remember
      ~connect:(fun () -> remember (next_target ()))
      f
  in
  (match outcome with
  | Ok r when r.status < 400 -> rs.primary <- !last_target
  | Ok _ | Error _ -> ());
  outcome
