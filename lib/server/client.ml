type t = { fd : Unix.file_descr; mutable leftover : string }

(* getaddrinfo so names ("localhost") work, not just numeric
   addresses; first IPv4 stream result wins *)
let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | { Unix.ai_addr; _ } :: _ -> ai_addr
  | [] -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let connect ?(host = "127.0.0.1") ~port () =
  let addr = resolve host port in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  { fd; leftover = "" }

let connect_unix path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; leftover = "" }

(* wrap an already-connected descriptor (e.g. one end of a
   socketpair) — how tests drive the protocol machinery with no
   listener *)
let of_fd fd = { fd; leftover = "" }

type response = { status : int; headers : (string * string) list; body : string }

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* a signal interrupting the write is not an error — same
             treatment the daemon gives an interrupted accept *)
          go off
  in
  go 0

let find_sub haystack needle from =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else go (i + 1)
  in
  go from

(* Read until [buf] contains at least [target] bytes, or — when
   [target] is [None] — until it contains "\r\n\r\n". The header scan
   resumes where the previous one gave up (minus 3 bytes, in case the
   separator straddles a chunk boundary) instead of rescanning the
   whole buffer per chunk, which was quadratic in the head size. *)
let read_until t buf target =
  let chunk = Bytes.create 8192 in
  let scanned = ref 0 in
  let have_enough () =
    match target with
    | Some n -> Buffer.length buf >= n
    | None -> (
        match find_sub (Buffer.contents buf) "\r\n\r\n" !scanned with
        | Some _ -> true
        | None ->
            scanned := max 0 (Buffer.length buf - 3);
            false)
  in
  let rec go () =
    if have_enough () then Ok ()
    else
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed mid-response"
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | exception Sys_error m -> Error m
  in
  go ()

let ( let* ) = Result.bind

let parse_status_line line =
  match String.split_on_char ' ' line with
  | _http :: status :: _ -> (
      match int_of_string_opt status with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "malformed status line %S" line))
  | _ -> Error (Printf.sprintf "malformed status line %S" line)

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> Error "empty response head"
  | status_line :: header_lines ->
      let* status = parse_status_line (String.trim status_line) in
      let headers =
        List.filter_map
          (fun line ->
            let line = String.trim line in
            match String.index_opt line ':' with
            | Some c ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 c),
                    String.trim
                      (String.sub line (c + 1) (String.length line - c - 1)) )
            | None -> None)
          header_lines
      in
      Ok (status, headers)

let read_response ?(head_only = false) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.leftover;
  t.leftover <- "";
  let* () = read_until t buf None in
  let all = Buffer.contents buf in
  let head_end = Option.get (find_sub all "\r\n\r\n" 0) in
  let* status, headers = parse_head (String.sub all 0 head_end) in
  let* length =
    (* a HEAD response declares the GET body's length but carries no
       bytes of it *)
    if head_only then Ok 0
    else
      match List.assoc_opt "content-length" headers with
      | None -> Ok 0
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (Printf.sprintf "malformed Content-Length %S" v))
  in
  let body_start = head_end + 4 in
  let* () = read_until t buf (Some (body_start + length)) in
  let all = Buffer.contents buf in
  let body = String.sub all body_start length in
  (* keep-alive: bytes past this response belong to the next one *)
  let consumed = body_start + length in
  t.leftover <- String.sub all consumed (String.length all - consumed);
  Ok { status; headers; body }

let request t ?(headers = []) ?body meth target =
  let head = Buffer.create 256 in
  Buffer.add_string head
    (Printf.sprintf "%s %s HTTP/1.1\r\n" (Http.meth_to_string meth) target);
  Buffer.add_string head "Host: localhost\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string head (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  (match body with
  | Some b ->
      Buffer.add_string head
        (Printf.sprintf "Content-Length: %d\r\n" (String.length b))
  | None -> ());
  Buffer.add_string head "\r\n";
  Option.iter (Buffer.add_string head) body;
  match write_all t.fd (Buffer.contents head) with
  | () -> read_response ~head_only:(meth = Http.HEAD) t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Sys_error m -> Error m

let get t target = request t Http.GET target
let post t target ~body = request t ~body Http.POST target

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Retries                                                            *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default_policy =
  {
    max_attempts = 6;
    base_delay = 0.05;
    multiplier = 2.0;
    max_delay = 2.0;
    jitter = 0.2;
  }

let retryable_status status = status = 408 || status = 429 || status = 503

(* ------------------------------------------------------------------ *)
(* Replica awareness                                                  *)
(* ------------------------------------------------------------------ *)

(* A replica's mutation rejection: 421 with the primary's address in
   the error object. 421 is deliberately NOT retryable — asking the
   same replica again can never succeed — so a plain caller fails
   fast; [~follow_primary] turns the address into a redirect. *)
let read_only_primary r =
  if r.status <> 421 then None
  else
    match Jsonlight.of_string r.body with
    | Error _ -> None
    | Ok json ->
        Option.bind (Jsonlight.member "error" json) (fun e ->
            Option.bind (Jsonlight.member "primary" e) Jsonlight.string_opt)

(* "HOST:PORT" — split on the LAST colon so a future bracketed host
   at least fails closed instead of mis-parsing *)
let split_address s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && host <> "" -> Some (host, p)
      | Some _ | None -> None)

let redirect_target r =
  Option.bind (read_only_primary r) split_address

let connect_to (host, port) = connect ~host ~port ()

(* Exponential growth capped at [max_delay], then shrunk by up to
   [jitter] of itself so a herd of retrying clients spreads out. The
   rng threads through, so a fixed seed gives a fixed schedule. *)
let delay_for policy rng attempt =
  let raw = policy.base_delay *. (policy.multiplier ** float_of_int attempt) in
  let capped = Float.min policy.max_delay raw in
  capped *. (1.0 -. (policy.jitter *. Random.State.float rng 1.0))

let backoff_schedule ?(seed = 0) policy =
  let rng = Random.State.make [| seed |] in
  let rec go i acc =
    if i >= policy.max_attempts - 1 then List.rev acc
    else go (i + 1) (delay_for policy rng i :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Persistent connections                                             *)
(* ------------------------------------------------------------------ *)

type persistent = {
  reconnect : unit -> t;
  connect_redirect : string * int -> t;
  policy : retry_policy;
  sleep : float -> unit;
  rng : Random.State.t;
  follow_primary : bool;
  mutable conn : t option;
  (* once a read-only rejection advertised the primary, connect there
     instead of through [reconnect] *)
  mutable redirect : (string * int) option;
}

let persistent ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ?(follow_primary = false) ?(connect_to = connect_to) connect =
  {
    reconnect = connect;
    connect_redirect = connect_to;
    policy;
    sleep;
    rng = Random.State.make [| seed |];
    follow_primary;
    conn = None;
    redirect = None;
  }

let drop_conn p =
  (match p.conn with Some t -> close t | None -> ());
  p.conn <- None

let persistent_close = drop_conn

let call p f =
  let obtain () =
    match p.conn with
    | Some t -> Ok t
    | None -> (
        let fresh () =
          match p.redirect with
          | Some target -> p.connect_redirect target
          | None -> p.reconnect ()
        in
        match fresh () with
        | t ->
            p.conn <- Some t;
            Ok t
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  let once () =
    match obtain () with
    | Error _ as e -> e
    | Ok t -> (
        match f t with
        | Ok r ->
            (* the daemon announces it will close (request cap, drain):
               drop the connection now so the next call reconnects
               instead of failing into a retry *)
            (match List.assoc_opt "connection" r.headers with
            | Some v
              when String.lowercase_ascii (String.trim v) = "close" ->
                drop_conn p
            | Some _ | None -> ());
            Ok r
        | Error _ as e ->
            (* torn connection: whatever state it held is unusable *)
            drop_conn p;
            e)
  in
  let rec attempt i =
    let outcome = once () in
    let retry () =
      if i + 1 >= p.policy.max_attempts then outcome
      else begin
        p.sleep (delay_for p.policy p.rng i);
        attempt (i + 1)
      end
    in
    match outcome with
    | Ok r
      when p.follow_primary && redirect_target r <> None
           && i + 1 < p.policy.max_attempts ->
        (* reconnect to the advertised primary; counts as an attempt
           but skips the backoff — the primary is a different host,
           not a recovering one *)
        p.redirect <- redirect_target r;
        drop_conn p;
        attempt (i + 1)
    | Ok r when retryable_status r.status -> retry ()
    | Ok _ -> outcome
    | Error _ -> retry ()
  in
  attempt 0

let with_retry ?(policy = default_policy) ?(seed = 0) ?(sleep = Unix.sleepf)
    ?(follow_primary = false) ?(connect_to = connect_to) ~connect f =
  let rng = Random.State.make [| seed |] in
  let redirect = ref None in
  let once () =
    let fresh () =
      match !redirect with
      | Some target -> connect_to target
      | None -> connect ()
    in
    match fresh () with
    | exception Unix.Unix_error (e, _, _) ->
        (* connect refused/reset: the daemon may be restarting *)
        Error (Unix.error_message e)
    | t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
  in
  let rec attempt i =
    let outcome = once () in
    let retry () =
      if i + 1 >= policy.max_attempts then outcome
      else begin
        sleep (delay_for policy rng i);
        attempt (i + 1)
      end
    in
    match outcome with
    | Ok r
      when follow_primary && redirect_target r <> None
           && i + 1 < policy.max_attempts ->
        redirect := redirect_target r;
        attempt (i + 1)
    | Ok r when retryable_status r.status -> retry ()
    | Ok _ -> outcome
    | Error _ -> retry ()
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Replication status                                                 *)
(* ------------------------------------------------------------------ *)

type replication = {
  role : string;
  primary : string option;
  applied_seq : int64;
  covered_seq : int64;
  lag : int64;
}

let replication t =
  let* r = get t "/replication" in
  if r.status <> 200 then
    Error (Printf.sprintf "GET /replication answered %d" r.status)
  else
    let* json = Jsonlight.of_string r.body in
    let str name = Option.bind (Jsonlight.member name json) Jsonlight.string_opt in
    let int64 name =
      match Option.bind (Jsonlight.member name json) Jsonlight.int_opt with
      | Some i -> Int64.of_int i
      | None -> 0L
    in
    match str "role" with
    | None -> Error "malformed /replication response: no \"role\""
    | Some role ->
        Ok
          {
            role;
            primary = str "primary";
            applied_seq = int64 "applied_seq";
            covered_seq = int64 "covered_seq";
            lag = int64 "lag";
          }
