(* Determinism and equivalence properties of Dsim campaigns, mirroring
   the parallel≡sequential style of test_graph_props.ml: the campaign
   seed fully determines every trial, so traces are bit-identical
   across runs and outcome arrays are identical across job counts. *)

let campaign ?(loss = 0.0) which =
  match which with
  | `Crash -> Casestudies.Campaigns.crash_availability ~loss ()
  | `Pims -> Casestudies.Campaigns.pims_price_feed ~loss ()

let case_gen = QCheck2.Gen.oneofl [ `Crash; `Pims ]

let outcome_eq (a : Dsim.Stats.outcome) (b : Dsim.Stats.outcome) = a = b

(* ----------------------- qcheck properties ------------------------ *)

let prop_trace_deterministic =
  QCheck2.Test.make ~name:"same seed => bit-identical trace and outcome" ~count:40
    QCheck2.Gen.(triple case_gen (int_bound 10_000) (int_bound 7))
    (fun (which, seed, index) ->
      let c = campaign ~loss:0.1 which in
      let o1, t1 = Dsim.Campaign.trial c ~seed index in
      let o2, t2 = Dsim.Campaign.trial c ~seed index in
      outcome_eq o1 o2 && t1 = t2)

let prop_jobs_equivalence =
  QCheck2.Test.make ~name:"run ~jobs:1 == run ~jobs:4, outcome for outcome" ~count:15
    QCheck2.Gen.(triple case_gen (int_bound 10_000) (int_range 1 12))
    (fun (which, seed, trials) ->
      let c = campaign ~loss:0.05 which in
      let sequential = Dsim.Campaign.run ~jobs:1 ~seed ~trials c in
      let parallel = Dsim.Campaign.run ~jobs:4 ~seed ~trials c in
      Array.length sequential = Array.length parallel
      && Array.for_all2 outcome_eq sequential parallel
      && Dsim.Stats.of_outcomes sequential = Dsim.Stats.of_outcomes parallel)

let prop_pool_reuse_equivalence =
  QCheck2.Test.make ~name:"a reused pool gives the same outcomes as fresh runs" ~count:10
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 8))
    (fun (seed, trials) ->
      let c = campaign `Crash in
      Dsim.Pool.with_pool ~jobs:3 (fun pool ->
          let first = Dsim.Campaign.run ~pool ~seed ~trials c in
          let second = Dsim.Campaign.run ~pool ~seed ~trials c in
          let fresh = Dsim.Campaign.run ~jobs:1 ~seed ~trials c in
          first = second && first = fresh))

let prop_report_sane =
  QCheck2.Test.make ~name:"report invariants: counts, rate, CI bracket" ~count:25
    QCheck2.Gen.(triple case_gen (int_bound 10_000) (int_range 1 20))
    (fun (which, seed, trials) ->
      let r = Dsim.Campaign.report ~seed ~trials (campaign ~loss:0.2 which) in
      r.Dsim.Stats.trials = trials
      && r.Dsim.Stats.completions + r.Dsim.Stats.failures = trials
      (* the bracket holds mathematically; at rates of exactly 0 or 1
         the matching bound equals the rate only up to rounding *)
      && r.Dsim.Stats.completion_ci.Dsim.Stats.lo -. 1e-9 <= r.Dsim.Stats.completion_rate
      && r.Dsim.Stats.completion_rate
         <= r.Dsim.Stats.completion_ci.Dsim.Stats.hi +. 1e-9
      && r.Dsim.Stats.mean_uptime >= 0.0
      && r.Dsim.Stats.mean_uptime <= 1.0)

let prop_trial_seeds_distinct =
  QCheck2.Test.make ~name:"splittable trial seeds do not collide in small sweeps"
    ~count:50
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let seeds = List.init 64 (Dsim.Campaign.trial_seed ~seed) in
      List.length (List.sort_uniq compare seeds) = 64)

(* --------------------------- unit tests --------------------------- *)

let test_wilson () =
  let ci = Dsim.Stats.wilson ~successes:0 ~trials:50 () in
  Alcotest.(check (float 1e-9)) "0 successes pins lo at 0" 0.0 ci.Dsim.Stats.lo;
  Alcotest.(check bool) "0 successes still admits some rate" true
    (ci.Dsim.Stats.hi > 0.0 && ci.Dsim.Stats.hi < 0.2);
  let ci = Dsim.Stats.wilson ~successes:50 ~trials:50 () in
  Alcotest.(check (float 1e-9)) "all successes pin hi at 1" 1.0 ci.Dsim.Stats.hi;
  Alcotest.(check bool) "all successes still admit failures" true
    (ci.Dsim.Stats.lo < 1.0 && ci.Dsim.Stats.lo > 0.8);
  (* textbook value: 8/10 with z=1.96 gives roughly [0.49, 0.94] *)
  let ci = Dsim.Stats.wilson ~successes:8 ~trials:10 () in
  Alcotest.(check (float 0.01)) "8/10 lo" 0.49 ci.Dsim.Stats.lo;
  Alcotest.(check (float 0.01)) "8/10 hi" 0.94 ci.Dsim.Stats.hi;
  let vacuous = Dsim.Stats.wilson ~successes:0 ~trials:0 () in
  Alcotest.(check (float 0.0)) "no trials: vacuous lo" 0.0 vacuous.Dsim.Stats.lo;
  Alcotest.(check (float 0.0)) "no trials: vacuous hi" 1.0 vacuous.Dsim.Stats.hi

let test_percentiles () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 |] in
  Alcotest.(check (float 0.0)) "p50 of 1..10" 5.0 (Dsim.Stats.percentile a 0.50);
  Alcotest.(check (float 0.0)) "p90 of 1..10" 9.0 (Dsim.Stats.percentile a 0.90);
  Alcotest.(check (float 0.0)) "p99 of 1..10" 10.0 (Dsim.Stats.percentile a 0.99);
  Alcotest.(check (float 0.0)) "empty is 0" 0.0 (Dsim.Stats.percentile [||] 0.5)

let test_report_of_outcomes () =
  let outcome ~trial ~completed ~latency ~uptime =
    {
      Dsim.Stats.trial;
      seed = trial;
      completed;
      latency;
      uptime;
      delivery =
        {
          Dsim.Checks.sent = 4;
          delivered = (if completed then 4 else 3);
          dropped = (if completed then 0 else 1);
          delivery_ratio = 0.0;
          mean_latency = 0.0;
          max_latency = 0.0;
        };
      end_time = 10.0;
    }
  in
  let outcomes =
    [|
      outcome ~trial:0 ~completed:true ~latency:(Some 2.0) ~uptime:1.0;
      outcome ~trial:1 ~completed:false ~latency:None ~uptime:0.5;
      outcome ~trial:2 ~completed:true ~latency:(Some 4.0) ~uptime:0.9;
    |]
  in
  let r = Dsim.Stats.of_outcomes outcomes in
  Alcotest.(check int) "trials" 3 r.Dsim.Stats.trials;
  Alcotest.(check int) "completions" 2 r.Dsim.Stats.completions;
  Alcotest.(check int) "failures" 1 r.Dsim.Stats.failures;
  Alcotest.(check (float 1e-9)) "mean latency over completed" 3.0
    r.Dsim.Stats.latency_mean;
  Alcotest.(check (float 1e-9)) "median latency" 2.0 r.Dsim.Stats.latency_p50;
  Alcotest.(check (float 1e-9)) "max latency" 4.0 r.Dsim.Stats.latency_max;
  Alcotest.(check (float 1e-9)) "mean uptime" 0.8 r.Dsim.Stats.mean_uptime;
  Alcotest.(check int) "sent summed" 12 r.Dsim.Stats.sent;
  Alcotest.(check int) "delivered summed" 11 r.Dsim.Stats.delivered

let test_fault_plan_sampling () =
  let c = campaign `Crash in
  let seed = Dsim.Campaign.trial_seed ~seed:3 0 in
  match Dsim.Campaign.sample_plan c ~seed with
  | [ Dsim.Faults.Crash_restart { node; at; downtime } ] ->
      Alcotest.(check string) "crash target" "police-cc" node;
      Alcotest.(check bool) "at within window" true (at >= 0.0 && at <= 2.0);
      Alcotest.(check bool) "downtime within window" true
        (downtime >= 0.0 && downtime <= 4.0);
      (* degenerate ranges sample their single point *)
      let fixed_campaign =
        {
          c with
          Dsim.Campaign.faults =
            [
              Dsim.Campaign.Crash_window
                {
                  node = "police-cc";
                  at = Dsim.Campaign.fixed 1.5;
                  downtime = Dsim.Campaign.fixed 2.5;
                };
            ];
        }
      in
      (match Dsim.Campaign.sample_plan fixed_campaign ~seed with
      | [ Dsim.Faults.Crash_restart { at; downtime; _ } ] ->
          Alcotest.(check (float 0.0)) "fixed at" 1.5 at;
          Alcotest.(check (float 0.0)) "fixed downtime" 2.5 downtime
      | _ -> Alcotest.fail "expected one crash_restart")
  | _ -> Alcotest.fail "expected one sampled crash_restart"

let test_campaign_uptime_and_horizon () =
  (* no faults: uptime 1, end_time = horizon thanks to the bounded-run
     clock semantics *)
  let c = campaign `Crash in
  let no_faults = { c with Dsim.Campaign.faults = []; watched = [ "police-cc" ] } in
  let o, _ = Dsim.Campaign.trial no_faults ~seed:5 0 in
  Alcotest.(check (float 1e-9)) "uptime without faults" 1.0 o.Dsim.Stats.uptime;
  Alcotest.(check (float 1e-9)) "end_time is the horizon" 12.0 o.Dsim.Stats.end_time;
  (* a fixed 3-unit outage inside a 12-unit horizon is 25% downtime *)
  let fixed =
    {
      c with
      Dsim.Campaign.faults =
        [
          Dsim.Campaign.Always
            (Dsim.Faults.Crash_restart { node = "police-cc"; at = 2.0; downtime = 3.0 });
        ];
      watched = [ "police-cc" ];
    }
  in
  let o, _ = Dsim.Campaign.trial fixed ~seed:5 0 in
  Alcotest.(check (float 1e-9)) "uptime with a fixed outage" 0.75 o.Dsim.Stats.uptime

let test_goal_latency () =
  (* lossless, jitter-free, no faults: the CRASH request takes two
     1-unit hops after the t=1 stimulus *)
  let c = campaign `Crash in
  let quiet =
    {
      c with
      Dsim.Campaign.faults = [];
      config = { c.Dsim.Campaign.config with Dsim.Network.jitter = 0.0 };
    }
  in
  let o, _ = Dsim.Campaign.trial quiet ~seed:0 0 in
  Alcotest.(check bool) "completes" true o.Dsim.Stats.completed;
  match o.Dsim.Stats.latency with
  | Some l -> Alcotest.(check (float 1e-6)) "two hops from stimulus" 2.0 l
  | None -> Alcotest.fail "expected a completion latency"

let test_chart_state_goal () =
  let c = campaign `Crash in
  let quiet =
    {
      c with
      Dsim.Campaign.faults = [];
      config = { c.Dsim.Campaign.config with Dsim.Network.jitter = 0.0 };
      goal =
        Dsim.Campaign.Chart_state { component = "police-cc"; state = "handling" };
    }
  in
  let o, _ = Dsim.Campaign.trial quiet ~seed:0 0 in
  Alcotest.(check bool) "police chart reached handling" true o.Dsim.Stats.completed;
  Alcotest.(check bool) "chart-state goals carry no latency" true
    (o.Dsim.Stats.latency = None)

let test_pool_runs_all_tasks () =
  Dsim.Pool.with_pool ~jobs:4 (fun pool ->
      let n = 503 in
      let hits = Array.make n 0 in
      Dsim.Pool.run pool ~tasks:n (fun () -> fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (Int.equal 1) hits);
      (* reuse the same pool for a second, smaller batch *)
      let seen = Array.make 7 false in
      Dsim.Pool.run pool ~tasks:7 (fun () -> fun i -> seen.(i) <- true);
      Alcotest.(check bool) "second batch covered" true (Array.for_all Fun.id seen))

let test_pool_propagates_exceptions () =
  Dsim.Pool.with_pool ~jobs:2 (fun pool ->
      let raised =
        try
          Dsim.Pool.run pool ~tasks:10 (fun () ->
              fun i -> if i = 5 then failwith "boom");
          false
        with Failure m -> String.equal m "boom"
      in
      Alcotest.(check bool) "exception surfaces in run" true raised;
      (* the pool survives a failed batch *)
      let ok = ref 0 in
      Dsim.Pool.run pool ~tasks:3 (fun () -> fun _ -> incr ok);
      Alcotest.(check bool) "pool still usable" true (!ok >= 1))

let test_run_fold_order () =
  let c = campaign `Crash in
  let indices =
    Dsim.Campaign.run_fold ~jobs:4 ~seed:1 ~trials:9 c ~init:[] ~f:(fun acc o ->
        o.Dsim.Stats.trial :: acc)
  in
  Alcotest.(check (list int)) "fold visits outcomes in trial order"
    [ 8; 7; 6; 5; 4; 3; 2; 1; 0 ] indices

let suite =
  [
    QCheck_alcotest.to_alcotest prop_trace_deterministic;
    QCheck_alcotest.to_alcotest prop_jobs_equivalence;
    QCheck_alcotest.to_alcotest prop_pool_reuse_equivalence;
    QCheck_alcotest.to_alcotest prop_report_sane;
    QCheck_alcotest.to_alcotest prop_trial_seeds_distinct;
    Alcotest.test_case "wilson confidence interval" `Quick test_wilson;
    Alcotest.test_case "nearest-rank percentiles" `Quick test_percentiles;
    Alcotest.test_case "report aggregation" `Quick test_report_of_outcomes;
    Alcotest.test_case "fault-plan sampling windows" `Quick test_fault_plan_sampling;
    Alcotest.test_case "uptime accounting and horizon clock" `Quick
      test_campaign_uptime_and_horizon;
    Alcotest.test_case "goal latency on the quiet network" `Quick test_goal_latency;
    Alcotest.test_case "chart-state goal" `Quick test_chart_state_goal;
    Alcotest.test_case "pool covers every task once" `Quick test_pool_runs_all_tasks;
    Alcotest.test_case "pool propagates worker exceptions" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "run_fold aggregates in trial order" `Quick test_run_fold_order;
  ]
