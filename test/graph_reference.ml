(* The list-and-hashtable communication graph that Adl.Graph used
   before the interned-ID/CSR rewrite, kept verbatim as a reference
   oracle: Test_graph_props checks that the compact implementation
   answers every query — successors, reachability, paths, components —
   identically on random architectures. Keep this in sync with nothing;
   it is intentionally frozen. *)

open Adl

type policy = Direct | Routed

type t = {
  node_list : string list;
  connector_set : (string, unit) Hashtbl.t;
  succ : (string, string list) Hashtbl.t;
  pred : (string, string list) Hashtbl.t;
  mutable edges : int;
}

let add_edge g a b =
  let cur = match Hashtbl.find_opt g.succ a with Some l -> l | None -> [] in
  if not (List.exists (String.equal b) cur) then begin
    Hashtbl.replace g.succ a (cur @ [ b ]);
    let back = match Hashtbl.find_opt g.pred b with Some l -> l | None -> [] in
    Hashtbl.replace g.pred b (back @ [ a ]);
    g.edges <- g.edges + 1
  end

let can_initiate = function
  | Structure.Required | Structure.In_out -> true
  | Structure.Provided -> false

let can_accept = function
  | Structure.Provided | Structure.In_out -> true
  | Structure.Required -> false

let of_structure s =
  let g =
    {
      node_list = Structure.brick_ids s;
      connector_set = Hashtbl.create 16;
      succ = Hashtbl.create 16;
      pred = Hashtbl.create 16;
      edges = 0;
    }
  in
  List.iter (fun c -> Hashtbl.replace g.connector_set c.Structure.conn_id ()) s.Structure.connectors;
  List.iter
    (fun l ->
      let fa = l.Structure.link_from.Structure.anchor in
      let ta = l.Structure.link_to.Structure.anchor in
      match
        (Structure.find_interface s l.Structure.link_from, Structure.find_interface s l.Structure.link_to)
      with
      | Some fi, Some ti ->
          if can_initiate fi.Structure.direction && can_accept ti.Structure.direction then
            add_edge g fa ta;
          if can_initiate ti.Structure.direction && can_accept fi.Structure.direction then
            add_edge g ta fa
      | None, _ | _, None -> ())
    s.Structure.links;
  g

let nodes g = g.node_list

let is_connector g id = Hashtbl.mem g.connector_set id

let successors g id = match Hashtbl.find_opt g.succ id with Some l -> l | None -> []

let predecessors g id = match Hashtbl.find_opt g.pred id with Some l -> l | None -> []

let adjacent g a b = List.exists (String.equal b) (successors g a)

let bfs policy g a b =
  if String.equal a b then Some [ a ]
  else begin
    let parent = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.replace parent a a;
    Queue.push a queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let may_relay =
        String.equal u a || match policy with Routed -> true | Direct -> is_connector g u
      in
      if may_relay then
        List.iter
          (fun v ->
            if not (Hashtbl.mem parent v) then begin
              Hashtbl.replace parent v u;
              if String.equal v b then found := true else Queue.push v queue
            end)
          (successors g u)
    done;
    if not !found then None
    else begin
      let rec build acc v =
        if String.equal v a then a :: acc else build (v :: acc) (Hashtbl.find parent v)
      in
      Some (build [] b)
    end
  end

let path ?(policy = Routed) g a b = bfs policy g a b

let reachable ?(policy = Routed) g a b = path ~policy g a b <> None

let undirected_components g =
  let visited = Hashtbl.create 16 in
  let neighbors id = successors g id @ predecessors g id in
  let component start =
    let acc = ref [] in
    let queue = Queue.create () in
    Hashtbl.replace visited start ();
    Queue.push start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      acc := u :: !acc;
      List.iter
        (fun v ->
          if not (Hashtbl.mem visited v) then begin
            Hashtbl.replace visited v ();
            Queue.push v queue
          end)
        (neighbors u)
    done;
    List.sort String.compare !acc
  in
  let comps =
    List.filter_map
      (fun id -> if Hashtbl.mem visited id then None else Some (component id))
      g.node_list
  in
  List.sort
    (fun a b ->
      match (a, b) with
      | x :: _, y :: _ -> String.compare x y
      | [], _ -> -1
      | _, [] -> 1)
    comps

let degree g id = (List.length (predecessors g id), List.length (successors g id))

let edge_count g = g.edges
