(* Tests for the walkthrough engine on a purpose-built small system. *)

open Scenarioml

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"O"
  |> add_class ~id:"thing" ~name:"Thing"
  |> add_event_type ~id:"enter" ~name:"enter" ~template:"User enters data"
  |> add_event_type ~id:"process" ~name:"process" ~template:"System processes"
  |> add_event_type ~id:"persist" ~name:"persist" ~template:"System persists"
  |> add_event_type ~id:"process-fast" ~name:"process fast" ~super:"process"
       ~template:"System processes quickly"
  |> add_event_type ~id:"orphan" ~name:"orphan" ~template:"Unplaced event"

let architecture =
  let open Adl.Build in
  create ~id:"a" ~name:"A" ()
  |> add_component ~id:"ui" ~name:"UI" ~responsibilities:[ "input" ]
  |> add_component ~id:"logic" ~name:"Logic" ~responsibilities:[ "compute" ]
  |> add_component ~id:"db" ~name:"DB" ~responsibilities:[ "store" ]
  |> add_connector ~id:"bus" ~name:"Bus"
  |> fun t ->
  biconnect t "ui" "bus" |> fun t ->
  biconnect t "bus" "logic" |> fun t -> biconnect t "logic" "db"

let mapping =
  let open Mapping.Build in
  create ~id:"m" ~ontology ~architecture
  |> map ~event_type:"enter" ~to_:[ "ui" ]
  |> map ~event_type:"process" ~to_:[ "logic" ]
  |> map ~event_type:"persist" ~to_:[ "logic"; "db" ]

let typed id event_type = Event.typed ~id ~event_type []

let scenario ?kind id events = Scen.scenario ?kind ~id ~name:id events

let set_of scenarios = Scen.make_set ~id:"s" ~name:"S" ontology scenarios

let eval ?config ?(arch = architecture) ?(mapping = mapping) s =
  let set = set_of [ s ] in
  Walkthrough.Engine.evaluate_scenario ?config ~set ~architecture:arch ~mapping s

let test_pass () =
  let r = eval (scenario "ok" [ typed "e1" "enter"; typed "e2" "process"; typed "e3" "persist" ]) in
  Alcotest.(check bool) "consistent" true (Walkthrough.Verdict.is_consistent r);
  (match r.Walkthrough.Verdict.traces with
  | [ t ] ->
      Alcotest.(check bool) "walked" true t.Walkthrough.Verdict.walked;
      (match List.nth t.Walkthrough.Verdict.steps 1 with
      | { Walkthrough.Verdict.hop = Some h; _ } ->
          Alcotest.(check (list string)) "hop path" [ "ui"; "bus"; "logic" ]
            h.Walkthrough.Verdict.via
      | _ -> Alcotest.fail "expected a hop on step 2")
  | _ -> Alcotest.fail "expected one trace")

let test_missing_link () =
  let broken = Adl.Diff.excise_link_between architecture "logic" "db" in
  let r =
    eval ~arch:broken (scenario "save" [ typed "e1" "process"; typed "e2" "persist" ])
  in
  Alcotest.(check bool) "inconsistent" false (Walkthrough.Verdict.is_consistent r);
  Alcotest.(check bool) "missing link reported" true
    (List.exists
       (function Walkthrough.Verdict.Missing_link _ -> true | _ -> false)
       r.Walkthrough.Verdict.inconsistencies)

let test_internal_chain () =
  (* persist maps to [logic; db]: the chain inside one event *)
  let broken = Adl.Diff.excise_link_between architecture "logic" "db" in
  let r = eval ~arch:broken (scenario "only" [ typed "e1" "persist" ]) in
  Alcotest.(check bool) "chain break detected" false (Walkthrough.Verdict.is_consistent r);
  let relaxed = Walkthrough.Engine.(default_config |> with_internal_checks false) in
  let r2 = eval ~config:relaxed ~arch:broken (scenario "only" [ typed "e1" "persist" ]) in
  Alcotest.(check bool) "relaxed config ignores chains" true
    (Walkthrough.Verdict.is_consistent r2)

let test_unmapped_event_type () =
  let r = eval (scenario "lost" [ typed "e1" "orphan" ]) in
  Alcotest.(check bool) "inconsistent" false (Walkthrough.Verdict.is_consistent r);
  Alcotest.(check bool) "reported" true
    (List.exists
       (function Walkthrough.Verdict.Unmapped_event_type _ -> true | _ -> false)
       r.Walkthrough.Verdict.inconsistencies)

let test_supertype_fallback () =
  (* process-fast is unmapped but inherits process -> logic (paper 5) *)
  let r = eval (scenario "fast" [ typed "e1" "enter"; typed "e2" "process-fast" ]) in
  Alcotest.(check bool) "consistent via supertype" true (Walkthrough.Verdict.is_consistent r);
  match r.Walkthrough.Verdict.traces with
  | [ t ] ->
      let step2 = List.nth t.Walkthrough.Verdict.steps 1 in
      Alcotest.(check (list string)) "placed at super's components" [ "logic" ]
        step2.Walkthrough.Verdict.components
  | _ -> Alcotest.fail "expected one trace"

let test_simple_event_policies () =
  let s =
    scenario "narrative"
      [ typed "e1" "enter"; Event.simple ~id:"e2" "time passes"; typed "e3" "process" ]
  in
  let r = eval s in
  Alcotest.(check bool) "skipped by default" true (Walkthrough.Verdict.is_consistent r);
  (* the narrative step must not break hop continuity: e3 hops from ui *)
  (match r.Walkthrough.Verdict.traces with
  | [ t ] -> (
      match List.nth t.Walkthrough.Verdict.steps 2 with
      | { Walkthrough.Verdict.hop = Some h; _ } ->
          Alcotest.(check string) "hop from ui" "ui" h.Walkthrough.Verdict.hop_from
      | _ -> Alcotest.fail "expected hop")
  | _ -> Alcotest.fail "one trace");
  let strict =
    Walkthrough.Engine.(config ~simple_events:Report_simple ())
  in
  let r2 = eval ~config:strict s in
  Alcotest.(check bool) "reported when strict" false (Walkthrough.Verdict.is_consistent r2)

let test_negative_semantics () =
  (* a negative scenario that CAN execute is an inconsistency *)
  let bad = scenario ~kind:Scen.Negative "neg" [ typed "e1" "enter"; typed "e2" "process" ] in
  let r = eval bad in
  Alcotest.(check bool) "executing negative flagged" false
    (Walkthrough.Verdict.is_consistent r);
  Alcotest.(check bool) "specific inconsistency" true
    (List.exists
       (function
         | Walkthrough.Verdict.Negative_scenario_executes _ -> true
         | _ -> false)
       r.Walkthrough.Verdict.inconsistencies);
  (* one that cannot execute is fine *)
  let impossible =
    scenario ~kind:Scen.Negative "neg2" [ typed "e1" "orphan" ]
  in
  Alcotest.(check bool) "non-executing negative consistent" true
    (Walkthrough.Verdict.is_consistent (eval impossible))

let test_alternation_requires_all_branches () =
  let broken = Adl.Diff.excise_link_between architecture "logic" "db" in
  let s =
    scenario "alts"
      [
        typed "e1" "enter";
        Event.Alternation
          { id = "a"; branches = [ [ typed "b1" "process" ]; [ typed "b2" "persist" ] ] };
      ]
  in
  let r = eval ~arch:broken s in
  (* branch 1 walks, branch 2 does not: positive scenarios need all *)
  Alcotest.(check int) "two traces" 2 (List.length r.Walkthrough.Verdict.traces);
  Alcotest.(check bool) "inconsistent overall" false (Walkthrough.Verdict.is_consistent r)

let test_evaluate_set () =
  let set =
    set_of
      [
        scenario "one" [ typed "e1" "enter" ];
        scenario "two" [ typed "e2" "orphan" ];
      ]
  in
  let r = Walkthrough.Engine.evaluate_set ~set ~architecture ~mapping () in
  Alcotest.(check int) "both evaluated" 2 (List.length r.Walkthrough.Engine.results);
  Alcotest.(check bool) "set inconsistent" false r.Walkthrough.Engine.consistent;
  Alcotest.(check bool) "coverage problems listed" true
    (r.Walkthrough.Engine.coverage_problems <> [])

let test_style_violations_in_set () =
  let styled =
    let open Adl.Build in
    create ~style:"c2" ~id:"sa" ~name:"SA" ()
    |> add_component ~id:"x" ~name:"X" ~responsibilities:[ "r" ]
    |> add_component ~id:"y" ~name:"Y" ~responsibilities:[ "r" ]
    |> fun t -> biconnect t "x" "y"
  in
  let m =
    Mapping.Build.(
      create ~id:"m2" ~ontology ~architecture:styled
      |> map ~event_type:"enter" ~to_:[ "x" ])
  in
  let set = set_of [ scenario "s" [ typed "e1" "enter" ] ] in
  let r = Walkthrough.Engine.evaluate_set ~set ~architecture:styled ~mapping:m () in
  Alcotest.(check bool) "style violations surfaced" true
    (r.Walkthrough.Engine.style_violations <> []);
  Alcotest.(check bool) "set inconsistent" false r.Walkthrough.Engine.consistent;
  let relaxed = Walkthrough.Engine.(default_config |> with_style_checks false) in
  let r2 =
    Walkthrough.Engine.evaluate_set ~config:relaxed ~set ~architecture:styled ~mapping:m ()
  in
  Alcotest.(check (list string)) "style checks off" []
    (List.map (fun v -> v.Styles.Rule.rule) r2.Walkthrough.Engine.style_violations)

let test_implied () =
  let set = set_of [ scenario "s" [ typed "e1" "enter"; typed "e2" "process" ] ] in
  let written = Walkthrough.Implied.successions_in_scenarios set in
  Alcotest.(check (list (pair string string))) "written pair" [ ("enter", "process") ] written;
  let candidates = Walkthrough.Implied.implied ~set ~architecture ~mapping () in
  (* (enter, process) is written; everything else connectable is implied *)
  Alcotest.(check bool) "does not contain written" true
    (not
       (List.exists
          (fun c ->
            String.equal c.Walkthrough.Implied.first "enter"
            && String.equal c.Walkthrough.Implied.second "process")
          candidates));
  Alcotest.(check bool) "contains process->persist" true
    (List.exists
       (fun c ->
         String.equal c.Walkthrough.Implied.first "process"
         && String.equal c.Walkthrough.Implied.second "persist")
       candidates)

let test_coverage_report () =
  let set =
    set_of
      [
        scenario "one" [ typed "e1" "enter"; typed "e2" "process" ];
        scenario "two" [ typed "e3" "enter" ];
      ]
  in
  let result = Walkthrough.Engine.evaluate_set ~set ~architecture ~mapping () in
  let report = Walkthrough.Coverage_report.of_set_result architecture result in
  let ui =
    List.find
      (fun c -> String.equal c.Walkthrough.Coverage_report.component "ui")
      report.Walkthrough.Coverage_report.covered
  in
  Alcotest.(check int) "ui placements" 2 ui.Walkthrough.Coverage_report.events_placed;
  Alcotest.(check (list string)) "ui scenarios" [ "one"; "two" ]
    ui.Walkthrough.Coverage_report.scenarios;
  Alcotest.(check (list string)) "db unexercised" [ "db" ]
    report.Walkthrough.Coverage_report.unexercised;
  Testutil.check_contains "rendered" (Walkthrough.Coverage_report.to_string report)
    "UNEXERCISED: db"

let test_report_rendering () =
  let broken = Adl.Diff.excise_link_between architecture "logic" "db" in
  let r = eval ~arch:broken (scenario "save" [ typed "e1" "process"; typed "e2" "persist" ]) in
  let text = Walkthrough.Report.scenario_result_to_string r in
  Testutil.check_contains "verdict" text "INCONSISTENT";
  Testutil.check_contains "failure marker" text "??";
  Testutil.check_contains "problem text" text "no communication path";
  let line = Walkthrough.Report.summary_line r in
  Testutil.check_contains "summary" line "save: INCONSISTENT"

let test_trace_to_dot () =
  let broken = Adl.Diff.excise_link_between architecture "logic" "db" in
  let r = eval ~arch:broken (scenario "save" [ typed "e1" "process"; typed "e2" "persist" ]) in
  match r.Walkthrough.Verdict.traces with
  | [ t ] ->
      let dot = Walkthrough.Report.trace_to_dot broken t in
      Testutil.check_contains "digraph" dot "digraph";
      Testutil.check_contains "failing components highlighted" dot "color=red"
  | _ -> Alcotest.fail "expected one trace"

let suite =
  [
    Alcotest.test_case "successful walkthrough with hop paths" `Quick test_pass;
    Alcotest.test_case "missing link detected" `Quick test_missing_link;
    Alcotest.test_case "internal realization chain" `Quick test_internal_chain;
    Alcotest.test_case "unmapped event type" `Quick test_unmapped_event_type;
    Alcotest.test_case "supertype placement fallback" `Quick test_supertype_fallback;
    Alcotest.test_case "simple event policies" `Quick test_simple_event_policies;
    Alcotest.test_case "negative scenario semantics" `Quick test_negative_semantics;
    Alcotest.test_case "alternation requires all branches" `Quick
      test_alternation_requires_all_branches;
    Alcotest.test_case "set evaluation" `Quick test_evaluate_set;
    Alcotest.test_case "style violations in set results" `Quick
      test_style_violations_in_set;
    Alcotest.test_case "implied successions" `Quick test_implied;
    Alcotest.test_case "component coverage report" `Quick test_coverage_report;
    Alcotest.test_case "report rendering (Fig. 4 shape)" `Quick test_report_rendering;
    Alcotest.test_case "walkthrough trace as DOT" `Quick test_trace_to_dot;
  ]
