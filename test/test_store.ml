(* The durability layer: CRC vectors, record framing, journal
   recovery, and the torn-tail invariant — a journal truncated at ANY
   byte offset recovers to a prefix of the acknowledged records,
   never an error. *)

module Crc32 = Store.Crc32
module Record = Store.Record
module Journal = Store.Journal
module Wal = Store.Wal

let temp_dir () =
  let path = Filename.temp_file "sosae-store" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---------------- CRC32 ------------------------------------------- *)

let test_crc32 () =
  (* the standard check value for CRC-32/ISO-HDLC *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "a" 0xE8B7BE43 (Crc32.string "a");
  (* chunked feeding composes to the same digest *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.string s in
  for cut = 0 to String.length s do
    let c = Crc32.string ~crc:(Crc32.string (String.sub s 0 cut))
        (String.sub s cut (String.length s - cut))
    in
    Alcotest.(check int) (Printf.sprintf "chunked at %d" cut) whole c
  done;
  Alcotest.(check int) "sub window"
    (Crc32.string "own f")
    (Crc32.sub s 12 5)

(* ---------------- Record framing ---------------------------------- *)

let encode_records payloads =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i payload -> Record.encode buf ~seq:(Int64.of_int (i + 1)) payload)
    payloads;
  Buffer.contents buf

let test_record_roundtrip () =
  let payloads = [ "alpha"; ""; String.make 300 'x'; "\x00\xff\r\n" ] in
  let bytes = encode_records payloads in
  let records, end_, tail = Record.decode_all bytes in
  Alcotest.(check bool) "clean" true (tail = Record.Clean);
  Alcotest.(check int) "consumed all" (String.length bytes) end_;
  Alcotest.(check (list string)) "payloads back" payloads (List.map snd records);
  Alcotest.(check (list int)) "seqs 1.." [ 1; 2; 3; 4 ]
    (List.map (fun (s, _) -> Int64.to_int s) records)

let test_record_torn_and_corrupt () =
  let bytes = encode_records [ "one"; "two" ] in
  (* cut inside the second record: first survives, tail is Torn *)
  let first_len = Record.header_size + 3 in
  let cut = String.sub bytes 0 (first_len + 5) in
  let records, end_, tail = Record.decode_all cut in
  Alcotest.(check (list string)) "prefix survives" [ "one" ] (List.map snd records);
  Alcotest.(check int) "valid end" first_len end_;
  (match tail with
  | Record.Torn off -> Alcotest.(check int) "torn offset" first_len off
  | _ -> Alcotest.fail "expected Torn");
  (* flip a payload byte of the second record: checksum catches it *)
  let flipped = Bytes.of_string bytes in
  let target = first_len + Record.header_size + 1 in
  Bytes.set flipped target (Char.chr (Char.code (Bytes.get flipped target) lxor 0xff));
  let records, _, tail = Record.decode_all (Bytes.to_string flipped) in
  Alcotest.(check (list string)) "corrupt drops tail" [ "one" ] (List.map snd records);
  (match tail with
  | Record.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt");
  (* an absurd declared length is corruption, not an allocation *)
  let huge = Bytes.make Record.header_size '\xff' in
  let records, _, tail = Record.decode_all (Bytes.to_string huge) in
  Alcotest.(check int) "no records" 0 (List.length records);
  match tail with
  | Record.Corrupt 0 -> ()
  | _ -> Alcotest.fail "expected Corrupt at 0"

(* ---------------- Journal ----------------------------------------- *)

let test_journal_reopen () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let j, r = Journal.open_ ~fsync:Journal.Never path in
      Alcotest.(check int) "fresh journal empty" 0 (List.length r.Journal.records);
      ignore (Journal.append j "a");
      ignore (Journal.append j "b");
      ignore (Journal.append j "c");
      let s = Journal.stats j in
      Alcotest.(check int) "3 appends" 3 s.Journal.appends;
      Alcotest.(check int) "no fsync under Never" 0 s.Journal.fsyncs;
      Alcotest.(check bool) "flush syncs once" true (Journal.flush j);
      Alcotest.(check bool) "flush idempotent" false (Journal.flush j);
      Journal.close j;
      let j, r = Journal.open_ path in
      Alcotest.(check (list string)) "records back" [ "a"; "b"; "c" ]
        (List.map snd r.Journal.records);
      Alcotest.(check int) "no truncation" 0 r.Journal.truncated_bytes;
      Alcotest.(check bool) "seq continues" true
        (Journal.append j "d" = 4L);
      Journal.close j)

let test_journal_torn_tail_truncated () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let j, _ = Journal.open_ path in
      ignore (Journal.append j "payload-1");
      ignore (Journal.append j "payload-2");
      Journal.close j;
      let valid = read_file path in
      write_file path (valid ^ "torn garbage after the real records");
      let j, r = Journal.open_ path in
      Alcotest.(check (list string)) "records intact" [ "payload-1"; "payload-2" ]
        (List.map snd r.Journal.records);
      Alcotest.(check bool) "tail reported" true (r.Journal.truncated_bytes > 0);
      Journal.close j;
      Alcotest.(check int) "tail removed from disk" (String.length valid)
        (String.length (read_file path));
      (* a second recovery is quiet: the discard already happened *)
      let j, r = Journal.open_ path in
      Alcotest.(check int) "second recovery clean" 0 r.Journal.truncated_bytes;
      Journal.close j)

let test_fsync_policy_of_string () =
  let ok s = match Journal.fsync_policy_of_string s with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "always" true (ok "always" = Journal.Always);
  Alcotest.(check bool) "never" true (ok "Never" = Journal.Never);
  Alcotest.(check bool) "interval default" true (ok "interval" = Journal.Interval 1.0);
  Alcotest.(check bool) "interval:2.5" true (ok "interval:2.5" = Journal.Interval 2.5);
  (match Journal.fsync_policy_of_string "interval:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative interval accepted");
  match Journal.fsync_policy_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted"

(* The recovery invariant, exhaustively: truncate a valid journal at
   EVERY byte offset; recovery must never raise, and must yield a
   prefix of the acknowledged payload sequence. *)
let prop_truncation_prefix =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (string_size ~gen:(char_range '\000' '\255') (int_range 0 24)))
  in
  QCheck2.Test.make ~name:"journal: truncation at every offset recovers a prefix"
    ~count:25 gen (fun payloads ->
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "j.log" in
          let j, _ = Journal.open_ ~fsync:Journal.Never path in
          List.iter (fun p -> ignore (Journal.append j p)) payloads;
          Journal.close j;
          let full = read_file path in
          let truncated = Filename.concat dir "t.log" in
          let is_prefix recovered =
            let rec go r p =
              match (r, p) with
              | [], _ -> true
              | _, [] -> false
              | r0 :: r', p0 :: p' -> String.equal r0 p0 && go r' p'
            in
            go recovered payloads
          in
          let failures = ref [] in
          for cut = 0 to String.length full do
            write_file truncated (String.sub full 0 cut);
            match Journal.open_ truncated with
            | j, r ->
                let got = List.map snd r.Journal.records in
                if not (is_prefix got) then
                  failures := Printf.sprintf "cut %d: not a prefix" cut :: !failures;
                Journal.close j
            | exception e ->
                failures :=
                  Printf.sprintf "cut %d: raised %s" cut (Printexc.to_string e)
                  :: !failures
          done;
          match !failures with
          | [] -> true
          | f :: _ -> QCheck2.Test.fail_report f))

(* ---------------- Group commit ------------------------------------ *)

(* Group-commit equivalence: N concurrent writers appending through
   the stage/await path must leave a journal that is byte-identical to
   appending the same payloads sequentially (without the group
   barrier) in the order the group path serialized them — batching
   shares fsyncs, it must never reorder, drop, or reframe records.
   The truncation invariant must survive the group path too: a
   group-committed log cut at EVERY byte offset recovers a prefix. *)
let prop_group_commit_equivalence =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 2 4)
        (list_size (int_range 0 5)
           (string_size ~gen:(char_range '\000' '\255') (int_range 0 16))))
  in
  QCheck2.Test.make
    ~name:"journal: group commit is byte-identical to sequential appends"
    ~count:15 gen (fun writer_payloads ->
      with_temp_dir (fun dir ->
          (* tag payloads with their writer so the serialized order can
             be checked per writer even when payloads repeat *)
          let writer_payloads =
            List.mapi
              (fun w payloads ->
                List.map (fun p -> Printf.sprintf "w%d:%s" w p) payloads)
              writer_payloads
          in
          let grouped = Filename.concat dir "grouped.log" in
          let j, _ = Journal.open_ ~fsync:Journal.Always grouped in
          Journal.enable_group
            ~config:{ Journal.Group.window = 0.001; max_batch = 64 } j;
          let threads =
            List.map
              (fun payloads ->
                Thread.create
                  (fun () ->
                    List.iter
                      (fun p ->
                        let seq = Journal.stage j p in
                        Journal.await j seq)
                      payloads)
                  ())
              writer_payloads
          in
          List.iter Thread.join threads;
          let total = List.length (List.concat writer_payloads) in
          let stats = Journal.group_stats j in
          Journal.close j;
          (* recover the serialized order the group path produced *)
          let _, (r : Journal.recovery) = Journal.open_ ~fsync:Journal.Never grouped in
          let recovered = r.Journal.records in
          if List.length recovered <> total then
            QCheck2.Test.fail_report
              (Printf.sprintf "group log has %d records, appended %d"
                 (List.length recovered) total);
          (* each writer's payloads appear in its issue order (the
             global interleaving is up to scheduling) *)
          let serialized = List.map snd recovered in
          List.iter
            (fun payloads ->
              let rec subsequence want have =
                match (want, have) with
                | [], _ -> true
                | _, [] -> false
                | w :: w', h :: h' ->
                    if String.equal w h then subsequence w' h'
                    else subsequence want h'
              in
              if not (subsequence payloads serialized) then
                QCheck2.Test.fail_report "writer order not preserved")
            writer_payloads;
          (* every append was released by a counted batch *)
          (match stats with
          | Some g ->
              if g.Journal.Group.batched_appends <> total then
                QCheck2.Test.fail_report
                  (Printf.sprintf "batches released %d of %d appends"
                     g.Journal.Group.batched_appends total)
          | None -> QCheck2.Test.fail_report "group stats missing");
          (* sequential replay in serialized order → byte-identical *)
          let sequential = Filename.concat dir "sequential.log" in
          let j2, _ = Journal.open_ ~fsync:Journal.Never sequential in
          List.iter (fun (_, p) -> ignore (Journal.append j2 p)) recovered;
          Journal.close j2;
          let a = read_file grouped and b = read_file sequential in
          if not (String.equal a b) then
            QCheck2.Test.fail_report "group and sequential logs differ";
          (* truncation at every offset of the group-committed log *)
          let truncated = Filename.concat dir "t.log" in
          let expected = List.map snd recovered in
          let is_prefix got =
            let rec go r p =
              match (r, p) with
              | [], _ -> true
              | _, [] -> false
              | r0 :: r', p0 :: p' -> String.equal r0 p0 && go r' p'
            in
            go got expected
          in
          let failures = ref [] in
          for cut = 0 to String.length a do
            write_file truncated (String.sub a 0 cut);
            match Journal.open_ truncated with
            | j, r ->
                let got = List.map snd r.Journal.records in
                if not (is_prefix got) then
                  failures := Printf.sprintf "cut %d: not a prefix" cut :: !failures;
                Journal.close j
            | exception e ->
                failures :=
                  Printf.sprintf "cut %d: raised %s" cut (Printexc.to_string e)
                  :: !failures
          done;
          match !failures with
          | [] -> true
          | f :: _ -> QCheck2.Test.fail_report f))

(* Group fsyncs must actually batch: 8 writers × 4 appends against a
   group journal need far fewer fsyncs than appends, and the stats
   must account for every append exactly once. *)
let test_group_commit_batches () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let j, _ = Journal.open_ ~fsync:Journal.Always path in
      Journal.enable_group
        ~config:{ Journal.Group.window = 0.002; max_batch = 64 } j;
      let writers = 8 and per_writer = 4 in
      let threads =
        List.init writers (fun w ->
            Thread.create
              (fun () ->
                for i = 0 to per_writer - 1 do
                  let seq = Journal.stage j (Printf.sprintf "w%d-%d" w i) in
                  Journal.await j seq
                done)
              ())
      in
      List.iter Thread.join threads;
      let total = writers * per_writer in
      let g =
        match Journal.group_stats j with
        | Some g -> g
        | None -> Alcotest.fail "group stats missing"
      in
      Alcotest.(check int) "every append released" total
        g.Journal.Group.batched_appends;
      Alcotest.(check int) "saved = appends - batches"
        (total - g.Journal.Group.batches)
        g.Journal.Group.fsyncs_saved;
      Alcotest.(check bool) "histogram accounts every batch" true
        (Array.fold_left ( + ) 0 g.Journal.Group.hist = g.Journal.Group.batches);
      Alcotest.(check bool) "largest batch sane" true
        (g.Journal.Group.largest_batch >= 1
        && g.Journal.Group.largest_batch <= total);
      Journal.close j;
      let _, (r : Journal.recovery) = Journal.open_ path in
      Alcotest.(check int) "all records durable" total
        (List.length r.Journal.records))

(* Non-Always policies must ignore the barrier: stage behaves like the
   old append (interval/never semantics), await returns immediately. *)
let test_group_commit_non_always () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let j, _ = Journal.open_ ~fsync:Journal.Never path in
      Journal.enable_group j;
      let seq = Journal.stage j "a" in
      Journal.await j seq;
      let s = Journal.stats j in
      Alcotest.(check int) "no fsync under Never" 0 s.Journal.fsyncs;
      (match Journal.group_stats j with
      | Some g -> Alcotest.(check int) "no batches" 0 g.Journal.Group.batches
      | None -> Alcotest.fail "group stats missing");
      Journal.close j)

(* ---------------- Wal: snapshot + journal ------------------------- *)

let test_wal_compaction () =
  with_temp_dir (fun dir ->
      let w, r = Wal.open_ dir in
      Alcotest.(check int) "fresh: no state" 0 (List.length r.Wal.state);
      ignore (Wal.append w "e1");
      ignore (Wal.append w "e2");
      Wal.compact w ~state:[ "s1"; "s2" ];
      Alcotest.(check int) "journal emptied" 0 (Wal.journal_bytes w);
      ignore (Wal.append w "e3");
      Wal.close w;
      let w, r = Wal.open_ dir in
      Alcotest.(check (list string)) "snapshot state" [ "s1"; "s2" ] r.Wal.state;
      Alcotest.(check (list string)) "post-snapshot entries" [ "e3" ] r.Wal.entries;
      Alcotest.(check bool) "snapshot covers e1,e2" true (r.Wal.snapshot_seq = 2L);
      (* sequences keep growing across snapshots *)
      Alcotest.(check bool) "next append past all" true (Wal.append w "e4" > 3L);
      Wal.close w)

(* The crash window between snapshot rename and journal truncate: the
   journal still holds entries the snapshot already covers. Recovery
   must skip them by sequence number, not replay them twice. *)
let test_wal_compaction_overlap () =
  with_temp_dir (fun dir ->
      let wal_log = Filename.concat dir "wal.log" in
      let w, _ = Wal.open_ dir in
      ignore (Wal.append w "e1");
      ignore (Wal.append w "e2");
      let covered = read_file wal_log in
      Wal.compact w ~state:[ "s1" ];
      ignore (Wal.append w "e3");
      Wal.close w;
      (* resurrect the pre-compaction journal prefix, as if the
         truncate never hit the disk *)
      write_file wal_log (covered ^ read_file wal_log);
      let w, r = Wal.open_ dir in
      Alcotest.(check (list string)) "state once" [ "s1" ] r.Wal.state;
      Alcotest.(check (list string)) "covered entries skipped" [ "e3" ]
        r.Wal.entries;
      Wal.close w)

(* Background compaction rotates the journal while appends keep
   landing: entries staged after the covered point must survive in the
   rotated file, entries the snapshot covers must be gone, and a
   reopen must see exactly snapshot state + tail. *)
let test_wal_background_compaction () =
  with_temp_dir (fun dir ->
      let w, _ = Wal.open_ dir in
      ignore (Wal.append w "e1");
      ignore (Wal.append w "e2");
      Wal.compact_background w ~state:(fun () ->
          (* an append landing mid-snapshot: not covered, must be
             mirrored into the rotated journal *)
          ignore (Wal.append w "e3");
          [ "s1" ]);
      Alcotest.(check int) "one compaction" 1 (Wal.stats w).Wal.compactions;
      ignore (Wal.append w "e4");
      Wal.close w;
      let w, r = Wal.open_ dir in
      Alcotest.(check (list string)) "snapshot state" [ "s1" ] r.Wal.state;
      Alcotest.(check (list string)) "tail survived rotation" [ "e3"; "e4" ]
        r.Wal.entries;
      Alcotest.(check bool) "snapshot covers e1,e2" true (r.Wal.snapshot_seq = 2L);
      Alcotest.(check bool) "seq keeps counting" true (Wal.append w "e5" = 5L);
      Wal.close w)

(* A failing snapshot must abort the rotation and leave the journal
   untouched — including the mirror, so a later rotation succeeds. *)
let test_wal_background_compaction_abort () =
  with_temp_dir (fun dir ->
      let w, _ = Wal.open_ dir in
      ignore (Wal.append w "e1");
      (match Wal.compact_background w ~state:(fun () -> failwith "no state") with
      | () -> Alcotest.fail "expected the state exception"
      | exception Failure _ -> ());
      Alcotest.(check int) "no compaction" 0 (Wal.stats w).Wal.compactions;
      ignore (Wal.append w "e2");
      Wal.compact_background w ~state:(fun () -> [ "s1" ]);
      Wal.close w;
      let w, r = Wal.open_ dir in
      Alcotest.(check (list string)) "state after retry" [ "s1" ] r.Wal.state;
      Alcotest.(check int) "journal tail empty" 0 (List.length r.Wal.entries);
      Wal.close w)

let test_wal_fsync_stats () =
  with_temp_dir (fun dir ->
      let w, _ = Wal.open_ ~fsync:Journal.Always dir in
      ignore (Wal.append w "a");
      ignore (Wal.append w "b");
      Wal.compact w ~state:[ "a"; "b" ];
      let s = Wal.stats w in
      Alcotest.(check int) "appends" 2 s.Wal.appends;
      Alcotest.(check bool) "every append synced" true (s.Wal.fsyncs >= 2);
      Alcotest.(check int) "one compaction" 1 s.Wal.compactions;
      Wal.close w;
      let w, _ = Wal.open_ ~fsync:(Journal.Interval 3600.0) dir in
      ignore (Wal.append w "c");
      ignore (Wal.append w "d");
      let s = Wal.stats w in
      Alcotest.(check int) "interval holds syncs back" 0 s.Wal.fsyncs;
      Wal.close w)

(* ---------------- Tail + Ship: log shipping ----------------------- *)

module Ship = Store.Ship

let decode_clean data =
  match Ship.decode data with
  | Ok records -> records
  | Error m -> Alcotest.fail m

let payloads_of records = List.map snd records
let seqs_of records = List.map (fun (s, _) -> Int64.to_int s) records

let test_tail_stream () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let j, _ = Journal.open_ ~fsync:Journal.Never path in
      ignore (Journal.append j "a");
      ignore (Journal.append j "b");
      ignore (Journal.append j "c");
      let c = Journal.Tail.cursor () in
      (match Journal.Tail.read j c with
      | Journal.Tail.Records data, covered ->
          let records = decode_clean data in
          Alcotest.(check (list string)) "streams the appends" [ "a"; "b"; "c" ]
            (payloads_of records);
          Alcotest.(check (list int)) "seqs 1.." [ 1; 2; 3 ] (seqs_of records);
          Alcotest.(check int) "covered" 3 (Int64.to_int covered)
      | Journal.Tail.Gap, _ -> Alcotest.fail "gap on a live journal");
      (match Journal.Tail.read j c with
      | Journal.Tail.Records "", _ -> ()
      | Journal.Tail.Records _, _ -> Alcotest.fail "re-shipped consumed records"
      | Journal.Tail.Gap, _ -> Alcotest.fail "gap when caught up");
      ignore (Journal.append j "d");
      (match Journal.Tail.read j c with
      | Journal.Tail.Records data, _ ->
          Alcotest.(check (list string)) "resumes at the append" [ "d" ]
            (payloads_of (decode_clean data))
      | Journal.Tail.Gap, _ -> Alcotest.fail "gap after an append");
      Journal.close j)

let test_tail_max_bytes () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.log" in
      let j, _ = Journal.open_ ~fsync:Journal.Never path in
      for i = 1 to 5 do
        ignore (Journal.append j (Printf.sprintf "payload-%d" i))
      done;
      (* a window that fits exactly one record ships them one per read,
         in order, never splitting a record *)
      let c = Journal.Tail.cursor () in
      let record_size = Record.header_size + String.length "payload-1" in
      let shipped = ref [] in
      let rec drain () =
        match Journal.Tail.read ~max_bytes:record_size j c with
        | Journal.Tail.Records "", _ -> ()
        | Journal.Tail.Records data, _ ->
            let records = decode_clean data in
            Alcotest.(check int) "one record per window" 1 (List.length records);
            shipped := !shipped @ payloads_of records;
            drain ()
        | Journal.Tail.Gap, _ -> Alcotest.fail "gap"
      in
      drain ();
      Alcotest.(check (list string)) "all shipped in order"
        [ "payload-1"; "payload-2"; "payload-3"; "payload-4"; "payload-5" ]
        !shipped;
      (* a record larger than the cap still ships — whole *)
      ignore (Journal.append j (String.make 200 'x'));
      (match Journal.Tail.read ~max_bytes:1 j c with
      | Journal.Tail.Records data, _ ->
          Alcotest.(check (list int)) "oversized record whole" [ 6 ]
            (seqs_of (decode_clean data))
      | Journal.Tail.Gap, _ -> Alcotest.fail "gap on oversized record");
      Journal.close j)

let test_tail_rotation_and_gap () =
  with_temp_dir (fun dir ->
      let w, _ = Wal.open_ dir in
      let j = Wal.journal w in
      ignore (Wal.append w "e1");
      ignore (Wal.append w "e2");
      let c = Journal.Tail.cursor () in
      (match Journal.Tail.read j c with
      | Journal.Tail.Records data, _ ->
          Alcotest.(check (list string)) "pre-rotation" [ "e1"; "e2" ]
            (payloads_of (decode_clean data))
      | Journal.Tail.Gap, _ -> Alcotest.fail "gap before rotation");
      (* compaction replaces the file: the cursor must detect the epoch
         change, rescan, and ship only what it has not yet returned *)
      Wal.compact w ~state:[ "s1" ];
      ignore (Wal.append w "e3");
      (match Journal.Tail.read j c with
      | Journal.Tail.Records data, _ ->
          let records = decode_clean data in
          Alcotest.(check (list string)) "post-rotation tail" [ "e3" ]
            (payloads_of records);
          Alcotest.(check (list int)) "seq continues" [ 3 ] (seqs_of records)
      | Journal.Tail.Gap, _ -> Alcotest.fail "gap across rotation");
      (* a fresh cursor needs records the journal no longer holds *)
      (match Journal.Tail.read j (Journal.Tail.cursor ()) with
      | Journal.Tail.Gap, _ -> ()
      | Journal.Tail.Records _, _ -> Alcotest.fail "expected a gap");
      Wal.close w)

let test_ship_fetch_bootstrap () =
  with_temp_dir (fun dir ->
      let w, _ = Wal.open_ dir in
      let ship = Ship.create w in
      ignore (Wal.append w "e1");
      ignore (Wal.append w "e2");
      ignore (Wal.append w "e3");
      let b = Ship.fetch ship ~after:0L in
      Alcotest.(check bool) "live batch is not a reset" false b.Ship.reset;
      Alcotest.(check (list string)) "live batch" [ "e1"; "e2"; "e3" ]
        (payloads_of (decode_clean b.Ship.data));
      Alcotest.(check int) "covered" 3 (Int64.to_int b.Ship.covered);
      let b = Ship.fetch ship ~after:3L in
      Alcotest.(check string) "caught up: empty batch" "" b.Ship.data;
      (* compact e1..e3 away, land one more record: a reader at seq 0
         can only be served from the snapshot *)
      Wal.compact w ~state:[ "s1"; "s2" ];
      ignore (Wal.append w "e4");
      let b = Ship.fetch ship ~after:0L in
      Alcotest.(check bool) "bootstrap is a reset" true b.Ship.reset;
      (match decode_clean b.Ship.data with
      | (meta_seq, "") :: state ->
          Alcotest.(check int) "meta seq covers the snapshot" 3
            (Int64.to_int meta_seq);
          Alcotest.(check (list string)) "snapshot state" [ "s1"; "s2" ]
            (payloads_of state)
      | _ -> Alcotest.fail "snapshot lacks a meta record");
      (* and resumes from the journal past the snapshot *)
      let b = Ship.fetch ship ~after:3L in
      Alcotest.(check bool) "tail after bootstrap" false b.Ship.reset;
      Alcotest.(check (list string)) "tail records" [ "e4" ]
        (payloads_of (decode_clean b.Ship.data));
      Wal.close w)

(* The shipping counterpart of the truncation invariant: a journal cut
   at EVERY byte offset, tailed to exhaustion in bounded windows, must
   ship exactly the records recovery replays — same sequence numbers,
   same payloads, every batch Clean. *)
let prop_ship_truncation_prefix =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 5)
           (string_size ~gen:(char_range '\000' '\255') (int_range 0 24)))
        (oneofl [ 1; 17; 1 lsl 20 ]))
  in
  QCheck2.Test.make
    ~name:"ship: tailing any truncation ships exactly what recovery replays"
    ~count:15 gen (fun (payloads, max_bytes) ->
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "j.log" in
          let j, _ = Journal.open_ ~fsync:Journal.Never path in
          List.iter (fun p -> ignore (Journal.append j p)) payloads;
          Journal.close j;
          let full = read_file path in
          let truncated = Filename.concat dir "t.log" in
          let failures = ref [] in
          for cut = 0 to String.length full do
            write_file truncated (String.sub full 0 cut);
            let j, (r : Journal.recovery) = Journal.open_ truncated in
            let c = Journal.Tail.cursor () in
            let shipped = ref [] in
            let rec drain () =
              match Journal.Tail.read ~max_bytes j c with
              | Journal.Tail.Records "", _ -> ()
              | Journal.Tail.Records data, _ -> (
                  match Record.decode_all data with
                  | records, _, Record.Clean ->
                      shipped := !shipped @ records;
                      drain ()
                  | _ ->
                      failures :=
                        Printf.sprintf "cut %d: unclean batch" cut :: !failures)
              | Journal.Tail.Gap, _ ->
                  failures := Printf.sprintf "cut %d: gap" cut :: !failures
            in
            drain ();
            if !shipped <> r.Journal.records then
              failures :=
                Printf.sprintf "cut %d: shipped differs from recovery" cut
                :: !failures;
            Journal.close j
          done;
          match !failures with
          | [] -> true
          | f :: _ -> QCheck2.Test.fail_report f))

let suite =
  [
    Alcotest.test_case "crc32: vectors + chunking" `Quick test_crc32;
    Alcotest.test_case "record: round trip" `Quick test_record_roundtrip;
    Alcotest.test_case "record: torn + corrupt tails" `Quick
      test_record_torn_and_corrupt;
    Alcotest.test_case "journal: reopen continues" `Quick test_journal_reopen;
    Alcotest.test_case "journal: torn tail truncated" `Quick
      test_journal_torn_tail_truncated;
    Alcotest.test_case "journal: fsync policy parsing" `Quick
      test_fsync_policy_of_string;
    QCheck_alcotest.to_alcotest prop_truncation_prefix;
    QCheck_alcotest.to_alcotest prop_group_commit_equivalence;
    Alcotest.test_case "journal: group commit batches fsyncs" `Quick
      test_group_commit_batches;
    Alcotest.test_case "journal: group barrier inert off Always" `Quick
      test_group_commit_non_always;
    Alcotest.test_case "wal: snapshot compaction" `Quick test_wal_compaction;
    Alcotest.test_case "wal: compaction overlap window" `Quick
      test_wal_compaction_overlap;
    Alcotest.test_case "wal: background compaction rotates" `Quick
      test_wal_background_compaction;
    Alcotest.test_case "wal: background compaction aborts cleanly" `Quick
      test_wal_background_compaction_abort;
    Alcotest.test_case "wal: fsync policies + stats" `Quick test_wal_fsync_stats;
    Alcotest.test_case "tail: streams appends in order" `Quick test_tail_stream;
    Alcotest.test_case "tail: bounded windows never split records" `Quick
      test_tail_max_bytes;
    Alcotest.test_case "tail: survives rotation, reports gaps" `Quick
      test_tail_rotation_and_gap;
    Alcotest.test_case "ship: fetch + snapshot bootstrap" `Quick
      test_ship_fetch_bootstrap;
    QCheck_alcotest.to_alcotest prop_ship_truncation_prefix;
  ]
