(* The paper's claims, as tests: every artifact of §4 validates, and
   every walkthrough/simulation outcome matches the published result. *)

(* ------------------------------ PIMS ------------------------------ *)

let pims_project =
  {
    Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
    architecture = Casestudies.Pims.architecture;
    mapping = Casestudies.Pims.mapping;
  }

let test_pims_artifacts_valid () =
  let v = Core.Sosae.validate pims_project in
  Alcotest.(check bool) "all valid" true v.Core.Sosae.ok

let test_pims_22_use_cases () =
  (* "In total the system's requirements comprise 22 use cases." *)
  Alcotest.(check int) "22 use cases" 22
    (List.length Casestudies.Pims.scenario_set.Scenarioml.Scen.scenarios)

let test_pims_focal_scenarios_shape () =
  (* "Create portfolio" main scenario has 4 events; "Get the current
     prices of shares" main scenario has 4 events (paper 4.1) *)
  let main_trace s =
    Scenarioml.Linearize.first_trace Casestudies.Pims.scenario_set s
  in
  Alcotest.(check int) "create portfolio main: 4 events" 4
    (List.length (main_trace Casestudies.Pims.create_portfolio));
  Alcotest.(check int) "get prices main: 4 events" 4
    (List.length (main_trace Casestudies.Pims.get_share_prices))

let test_pims_layered_style () =
  Alcotest.(check (list string)) "conforms to layered" []
    (List.map (fun v -> v.Styles.Rule.rule)
       (Styles.Check.check_declared Casestudies.Pims.architecture))

let test_pims_table1_property () =
  (* "Each ontology event type is mapped at least to one component and
     each component is mapped to by at least by one ontology event
     type." *)
  Alcotest.(check bool) "mapping total" true
    (Mapping.Coverage.is_total Casestudies.Pims.ontology Casestudies.Pims.architecture
       Casestudies.Pims.mapping)

let test_pims_intact_walkthroughs () =
  (* "the PIMS architecture ... is consistent with all the scenarios
     describing the system functional requirements" *)
  let r = Core.Sosae.evaluate pims_project in
  List.iter
    (fun sr ->
      if not (Walkthrough.Verdict.is_consistent sr) then
        Alcotest.failf "scenario %s unexpectedly inconsistent"
          sr.Walkthrough.Verdict.scenario_id)
    r.Walkthrough.Engine.results;
  Alcotest.(check bool) "set consistent" true r.Walkthrough.Engine.consistent

let test_pims_fig4_walkthrough () =
  (* "our expectation was that the walkthrough of the Create portfolio
     scenario would succeed while the Get the current prices of shares
     scenario would fail" *)
  let broken = { pims_project with Core.Sosae.architecture = Casestudies.Pims.broken_architecture } in
  (match Core.Sosae.evaluate_scenario broken "create-portfolio" with
  | Some r ->
      Alcotest.(check bool) "create portfolio succeeds" true
        (Walkthrough.Verdict.is_consistent r)
  | None -> Alcotest.fail "scenario missing");
  match Core.Sosae.evaluate_scenario broken "get-share-prices" with
  | Some r ->
      Alcotest.(check bool) "get prices fails" false (Walkthrough.Verdict.is_consistent r);
      (* failure is at the fourth event, on the Loader -> Data Access hop *)
      let failing =
        List.concat_map
          (fun t -> List.filter (fun s -> s.Walkthrough.Verdict.step_problems <> []) t.Walkthrough.Verdict.steps)
          r.Walkthrough.Verdict.traces
      in
      (match failing with
      | [ step ] -> (
          Alcotest.(check int) "fails at event 4" 4 step.Walkthrough.Verdict.index;
          match step.Walkthrough.Verdict.step_problems with
          | [ Walkthrough.Verdict.Missing_link { from_components; to_components; _ } ] ->
              Alcotest.(check (list string)) "from loader" [ "loader" ] from_components;
              Alcotest.(check (list string)) "to data access" [ "data-access" ] to_components
          | _ -> Alcotest.fail "expected exactly one missing link")
      | _ -> Alcotest.fail "expected exactly one failing step")
  | None -> Alcotest.fail "scenario missing"

let test_pims_event_examples_from_paper () =
  (* the mapping examples quoted in 3.4 *)
  Alcotest.(check (list string)) "user enters -> Master Controller" [ "master-controller" ]
    (Mapping.Types.components_of Casestudies.Pims.mapping "user-enters");
  Alcotest.(check (list string)) "authenticate -> Authentication" [ "authentication" ]
    (Mapping.Types.components_of Casestudies.Pims.mapping "system-authenticates")

let test_pims_xml_roundtrip () =
  let dir = Filename.temp_file "pims" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let s = Filename.concat dir "s.xml"
  and a = Filename.concat dir "a.xml"
  and m = Filename.concat dir "m.xml" in
  Core.Sosae.save_project pims_project ~scenarios:s ~architecture:a ~mapping:m;
  let reloaded =
    match Core.Sosae.load_project_result ~scenarios:s ~architecture:a ~mapping:m with
    | Ok p -> p
    | Error e -> Alcotest.failf "reload failed: %s" (Core.Sosae.load_error_to_string e)
  in
  Alcotest.(check bool) "scenarios identical" true
    (reloaded.Core.Sosae.scenarios = pims_project.Core.Sosae.scenarios);
  Alcotest.(check bool) "architecture identical" true
    (reloaded.Core.Sosae.architecture = pims_project.Core.Sosae.architecture);
  Alcotest.(check bool) "mapping identical" true
    (reloaded.Core.Sosae.mapping = pims_project.Core.Sosae.mapping);
  List.iter Sys.remove [ s; a; m ];
  Sys.rmdir dir

(* ------------------------------ CRASH ----------------------------- *)

let test_crash_artifacts_valid () =
  Alcotest.(check (list string)) "ontology" []
    (List.map Ontology.Wellformed.problem_to_string
       (Ontology.Wellformed.check Casestudies.Crash.ontology));
  Alcotest.(check (list string)) "entity scenarios" []
    (List.map Scenarioml.Validate.problem_to_string
       (Scenarioml.Validate.check Casestudies.Crash.entity_scenario_set));
  Alcotest.(check (list string)) "network scenarios" []
    (List.map Scenarioml.Validate.problem_to_string
       (Scenarioml.Validate.check Casestudies.Crash.network_scenario_set));
  Alcotest.(check (list string)) "entity architecture" []
    (List.map Adl.Validate.problem_to_string
       (Adl.Validate.check Casestudies.Crash.entity_architecture))

let test_crash_seven_organizations () =
  Alcotest.(check int) "7 orgs" 7 (List.length Casestudies.Crash.organizations);
  let hl = Casestudies.Crash.high_level_architecture () in
  (* 3 subsystems per org + the shared emergency network connector *)
  Alcotest.(check int) "components" 21 (List.length hl.Adl.Structure.components);
  Alcotest.(check int) "connectors" 8 (List.length hl.Adl.Structure.connectors)

let test_crash_c2_conformance () =
  Alcotest.(check (list string)) "entity conforms to C2" []
    (List.map (fun v -> v.Styles.Rule.rule)
       (Styles.Check.check_declared Casestudies.Crash.entity_architecture))

let test_crash_fig8_mapping () =
  (* "the event type sendMessage is mapped to three components: User
     Interface, Sharing Info Manager, and Communication Manager" *)
  Alcotest.(check (list string)) "sendMessage mapping"
    [ "user-interface"; "sharing-info-manager"; "communication-manager" ]
    (Mapping.Types.components_of Casestudies.Crash.entity_mapping "send-message")

let test_crash_scenarios_shape () =
  (* both paper scenarios have exactly 4 events in a chain *)
  let steps s =
    List.length (Scenarioml.Linearize.first_trace Casestudies.Crash.entity_scenario_set s)
  in
  Alcotest.(check int) "availability: 4" 4 (steps Casestudies.Crash.entity_availability);
  Alcotest.(check int) "sequence: 4" 4 (steps Casestudies.Crash.message_sequence)

let test_crash_static_walkthroughs () =
  let set = Casestudies.Crash.entity_scenario_set in
  let r =
    Walkthrough.Engine.evaluate_set ~set
      ~architecture:Casestudies.Crash.entity_architecture
      ~mapping:Casestudies.Crash.entity_mapping ()
  in
  List.iter
    (fun sr ->
      Alcotest.(check bool)
        (sr.Walkthrough.Verdict.scenario_id ^ " consistent")
        true
        (Walkthrough.Verdict.is_consistent sr))
    r.Walkthrough.Engine.results

let test_crash_availability_dynamic () =
  (* "If the architecture provides a mechanism for detecting the
     availability of the entities, then the ... Fire Department's
     Command and Control ... will receive an error message ...
     Otherwise [it] will not receive any alert." *)
  let with_detector = Casestudies.Crash_sim.run_availability ~detector:true in
  Alcotest.(check bool) "alerted with detector" true
    with_detector.Casestudies.Crash_sim.verdict.Dsim.Checks.alerted;
  Alcotest.(check bool) "operator chart alerted" true
    with_detector.Casestudies.Crash_sim.fire_alerted;
  let without = Casestudies.Crash_sim.run_availability ~detector:false in
  Alcotest.(check bool) "silent without detector" false
    without.Casestudies.Crash_sim.verdict.Dsim.Checks.alerted;
  Alcotest.(check bool) "operator never alerted" false
    without.Casestudies.Crash_sim.fire_alerted

let test_crash_ordering_dynamic () =
  (* "If first message sent ... arrives first ... then the order is
     preserved; otherwise the order not preserved." *)
  let fifo = Casestudies.Crash_sim.run_ordering ~fifo:true () in
  Alcotest.(check bool) "fifo preserves" true
    fifo.Casestudies.Crash_sim.verdict.Dsim.Checks.preserved;
  let jittered = Casestudies.Crash_sim.run_ordering ~fifo:false () in
  Alcotest.(check bool) "jitter violates" false
    jittered.Casestudies.Crash_sim.verdict.Dsim.Checks.preserved

let test_crash_paper_gap_matches () =
  (* the paper's exact parameters: the second message follows the first
     after 5 seconds — with modest jitter FIFO-less channels still keep
     that pair ordered, showing why the generalized workload matters *)
  let wide_gap =
    Casestudies.Crash_sim.run_ordering ~messages:2 ~gap:5.0 ~jitter:2.0 ~fifo:false ()
  in
  Alcotest.(check bool) "5s gap survives small jitter" true
    wide_gap.Casestudies.Crash_sim.verdict.Dsim.Checks.preserved

let test_crash_negative_scenario () =
  let nset = Casestudies.Crash.network_scenario_set in
  let eval arch =
    Walkthrough.Engine.evaluate_scenario ~set:nset ~architecture:arch
      ~mapping:Casestudies.Crash.network_mapping Casestudies.Crash.unauthenticated_access
  in
  Alcotest.(check bool) "secure architecture passes" true
    (Walkthrough.Verdict.is_consistent
       (eval (Casestudies.Crash.high_level_architecture ~orgs:2 ())));
  let flagged = eval Casestudies.Crash.vulnerable_architecture in
  Alcotest.(check bool) "vulnerable architecture flagged" false
    (Walkthrough.Verdict.is_consistent flagged);
  Alcotest.(check bool) "as negative-scenario execution" true
    (List.exists
       (function
         | Walkthrough.Verdict.Negative_scenario_executes _ -> true
         | _ -> false)
       flagged.Walkthrough.Verdict.inconsistencies)

let test_crash_coordination () =
  let full = Casestudies.Crash_sim.run_coordination () in
  Alcotest.(check int) "six peers" 6 full.Casestudies.Crash_sim.peers;
  Alcotest.(check int) "all acknowledge" 6 full.Casestudies.Crash_sim.acknowledged;
  let degraded =
    Casestudies.Crash_sim.run_coordination ~down:[ "police-cc"; "hospital-cc" ] ()
  in
  Alcotest.(check int) "two peers missing" 4 degraded.Casestudies.Crash_sim.acknowledged;
  Alcotest.(check int) "their notifications dropped" 2
    degraded.Casestudies.Crash_sim.stats.Dsim.Checks.dropped

let test_crash_broadcast_robustness () =
  let stats = Casestudies.Crash_sim.run_all_peers_broadcast () in
  Alcotest.(check int) "7*6 messages" 42 stats.Dsim.Checks.sent;
  Alcotest.(check int) "all delivered" 42 stats.Dsim.Checks.delivered

let test_crash_entity_execution () =
  (* executing messages on the Fig. 7 architecture reproduces Fig. 8's
     three-component realization of sendMessage, in both directions *)
  let r = Casestudies.Crash_behavior.run_message_paths () in
  Alcotest.(check bool) "outgoing reaches the network" true
    r.Casestudies.Crash_behavior.outgoing_reached_network;
  Alcotest.(check (list string)) "outgoing path is Fig. 8's"
    [ "user-interface"; "sharing-info-manager"; "communication-manager" ]
    r.Casestudies.Crash_behavior.outgoing_path;
  Alcotest.(check bool) "incoming informs the operator" true
    r.Casestudies.Crash_behavior.incoming_informed_ui;
  Alcotest.(check (list string)) "incoming path reversed"
    [ "communication-manager"; "sharing-info-manager"; "user-interface" ]
    r.Casestudies.Crash_behavior.incoming_path;
  (* severing the sharing manager from the lower bus breaks the path *)
  let broken =
    Adl.Diff.excise_link_between Casestudies.Crash.entity_architecture
      "sharing-info-manager" "bus-bottom"
  in
  let r2 = Casestudies.Crash_behavior.run_message_paths_on broken in
  Alcotest.(check bool) "broken entity cannot send" false
    r2.Casestudies.Crash_behavior.outgoing_reached_network

let test_crash_partition () =
  let stats = Casestudies.Crash_sim.run_partition ~heal_at:10.0 ~duration:20.0 () in
  Alcotest.(check int) "twenty sent" 20 stats.Dsim.Checks.sent;
  (* messages sent before t=9 arrive at t+1 <= 10 while still blocked;
     the partition is silent, so they are simply lost *)
  Alcotest.(check bool) "in-window messages lost" true (stats.Dsim.Checks.dropped > 0);
  Alcotest.(check bool) "post-heal messages flow" true (stats.Dsim.Checks.delivered > 0);
  Alcotest.(check int) "nothing unaccounted" 20
    (stats.Dsim.Checks.delivered + stats.Dsim.Checks.dropped)

let test_crash_charts_wellformed () =
  Alcotest.(check (list string)) "fire chart" []
    (List.map Statechart.Validate.problem_to_string
       (Statechart.Validate.check Casestudies.Crash.fire_chart));
  Alcotest.(check (list string)) "police chart" []
    (List.map Statechart.Validate.problem_to_string
       (Statechart.Validate.check Casestudies.Crash.police_chart))

let suite =
  [
    Alcotest.test_case "PIMS: artifacts valid" `Quick test_pims_artifacts_valid;
    Alcotest.test_case "PIMS: 22 use cases" `Quick test_pims_22_use_cases;
    Alcotest.test_case "PIMS: focal scenarios have the paper's shape" `Quick
      test_pims_focal_scenarios_shape;
    Alcotest.test_case "PIMS: layered style conformance" `Quick test_pims_layered_style;
    Alcotest.test_case "PIMS: Table 1 coverage property" `Quick test_pims_table1_property;
    Alcotest.test_case "PIMS: all intact walkthroughs succeed" `Quick
      test_pims_intact_walkthroughs;
    Alcotest.test_case "PIMS: Fig. 4 failure reproduced exactly" `Quick
      test_pims_fig4_walkthrough;
    Alcotest.test_case "PIMS: 3.4 mapping examples" `Quick
      test_pims_event_examples_from_paper;
    Alcotest.test_case "PIMS: project XML round trip" `Quick test_pims_xml_roundtrip;
    Alcotest.test_case "CRASH: artifacts valid" `Quick test_crash_artifacts_valid;
    Alcotest.test_case "CRASH: seven organizations (Fig. 5)" `Quick
      test_crash_seven_organizations;
    Alcotest.test_case "CRASH: C2 conformance (Fig. 7)" `Quick test_crash_c2_conformance;
    Alcotest.test_case "CRASH: Fig. 8 sendMessage mapping" `Quick test_crash_fig8_mapping;
    Alcotest.test_case "CRASH: scenario shapes (Fig. 6)" `Quick test_crash_scenarios_shape;
    Alcotest.test_case "CRASH: static walkthroughs" `Quick test_crash_static_walkthroughs;
    Alcotest.test_case "CRASH: availability flips with the detector" `Quick
      test_crash_availability_dynamic;
    Alcotest.test_case "CRASH: ordering flips with FIFO" `Quick test_crash_ordering_dynamic;
    Alcotest.test_case "CRASH: the paper's 5-second gap" `Quick test_crash_paper_gap_matches;
    Alcotest.test_case "CRASH: negative scenario flags the vulnerable variant" `Quick
      test_crash_negative_scenario;
    Alcotest.test_case "CRASH: all-peer broadcast" `Quick test_crash_broadcast_robustness;
    Alcotest.test_case "CRASH: coordination with failed peers" `Quick
      test_crash_coordination;
    Alcotest.test_case "CRASH: silent partition" `Quick test_crash_partition;
    Alcotest.test_case "CRASH: behavior charts well-formed" `Quick
      test_crash_charts_wellformed;
    Alcotest.test_case "CRASH: executing messages on the entity architecture" `Quick
      test_crash_entity_execution;
  ]
