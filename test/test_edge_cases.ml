(* Edge cases across the pipeline: empty artifacts, degenerate
   scenarios, and boundary behaviors that deserve pinning. *)

open Scenarioml

let ontology =
  Ontology.Build.(
    create ~id:"o" ~name:"O" |> add_event_type ~id:"e" ~name:"e" ~template:"event")

let architecture =
  Adl.Build.(
    create ~id:"a" ~name:"A" ()
    |> add_component ~id:"only" ~name:"Only" ~responsibilities:[ "r" ])

let mapping =
  Mapping.Build.(
    create ~id:"m" ~ontology ~architecture |> map ~event_type:"e" ~to_:[ "only" ])

let test_empty_scenario () =
  (* a scenario with no events walks vacuously *)
  let s = Scen.scenario ~id:"empty" ~name:"Empty" [] in
  let set = Scen.make_set ~id:"s" ~name:"S" ontology [ s ] in
  let r = Walkthrough.Engine.evaluate_scenario ~set ~architecture ~mapping s in
  Alcotest.(check bool) "vacuously consistent" true (Walkthrough.Verdict.is_consistent r);
  Alcotest.(check int) "one empty trace" 1 (List.length r.Walkthrough.Verdict.traces)

let test_zero_trace_scenario () =
  (* an empty alternation has no traces at all: positive scenarios are
     vacuously consistent, and validation flags the construct *)
  let s =
    Scen.scenario ~id:"no-traces" ~name:"No traces"
      [ Event.Alternation { id = "alt"; branches = [] } ]
  in
  let set = Scen.make_set ~id:"s" ~name:"S" ontology [ s ] in
  Alcotest.(check int) "zero traces" 0
    (List.length (Linearize.scenario set s).Linearize.traces);
  let r = Walkthrough.Engine.evaluate_scenario ~set ~architecture ~mapping s in
  Alcotest.(check bool) "vacuously consistent" true (Walkthrough.Verdict.is_consistent r);
  Alcotest.(check bool) "but validation flags it" true
    (List.exists
       (function Validate.Empty_alternation _ -> true | _ -> false)
       (Validate.check set))

let test_single_component_architecture () =
  (* one component, no links: valid (nothing to link to), and a
     scenario whose events all land there needs no hops *)
  Alcotest.(check (list string)) "valid" []
    (List.map Adl.Validate.problem_to_string (Adl.Validate.check architecture));
  let s = Scen.scenario ~id:"s" ~name:"S"
      [ Event.typed ~id:"e1" ~event_type:"e" []; Event.typed ~id:"e2" ~event_type:"e" [] ]
  in
  let set = Scen.make_set ~id:"x" ~name:"X" ontology [ s ] in
  let r = Walkthrough.Engine.evaluate_scenario ~set ~architecture ~mapping s in
  Alcotest.(check bool) "same-component hops are trivial" true
    (Walkthrough.Verdict.is_consistent r)

let test_empty_set_evaluation () =
  let set = Scen.make_set ~id:"s" ~name:"S" ontology [] in
  let r = Walkthrough.Engine.evaluate_set ~set ~architecture ~mapping () in
  Alcotest.(check int) "no results" 0 (List.length r.Walkthrough.Engine.results);
  Alcotest.(check bool) "consistent" true r.Walkthrough.Engine.consistent

let test_empty_ontology_and_mapping () =
  let empty_ontology = Ontology.Build.create ~id:"eo" ~name:"Empty" in
  Alcotest.(check bool) "empty ontology is well-formed" true
    (Ontology.Wellformed.is_wellformed empty_ontology);
  let empty_mapping =
    Mapping.Build.create ~id:"em" ~ontology:empty_ontology ~architecture
  in
  (* the only problem is the unmapped component *)
  Alcotest.(check int) "one coverage problem" 1
    (List.length (Mapping.Coverage.check empty_ontology architecture empty_mapping))

let test_empty_architecture () =
  let empty_arch = Adl.Build.create ~id:"ea" ~name:"Empty" () in
  Alcotest.(check (list string)) "valid" []
    (List.map Adl.Validate.problem_to_string (Adl.Validate.check empty_arch));
  let g = Adl.Graph.of_structure empty_arch in
  Alcotest.(check (list string)) "no nodes" [] (Adl.Graph.nodes g);
  Alcotest.(check int) "no edges" 0 (Adl.Graph.edge_count g);
  (* a typed event cannot be placed on an empty architecture *)
  let s = Scen.scenario ~id:"s" ~name:"S" [ Event.typed ~id:"e1" ~event_type:"e" [] ] in
  let set = Scen.make_set ~id:"x" ~name:"X" ontology [ s ] in
  let r =
    Walkthrough.Engine.evaluate_scenario ~set ~architecture:empty_arch ~mapping s
  in
  (* the mapping still names "only", which does not exist: the internal
     chain check passes trivially (single element), but coverage
     reports the dangling reference *)
  Alcotest.(check bool) "coverage catches dangling mapping" true
    (List.exists
       (function Mapping.Coverage.Unknown_component _ -> true | _ -> false)
       (Mapping.Coverage.check ontology empty_arch mapping));
  ignore r

let test_unicode_text_roundtrip () =
  (* non-ASCII scenario text survives the XML round trip *)
  let s =
    Scen.scenario ~id:"s" ~name:"Ünïcode — ça marche"
      [ Event.simple ~id:"e1" "Füllt das Formular aus — 完了" ]
  in
  let set = Scen.make_set ~id:"x" ~name:"X" ontology [ s ] in
  Alcotest.(check bool) "identical after round trip" true
    (Xml_io.set_of_string (Xml_io.set_to_string set) = set)

let test_whitespace_and_crlf_prose () =
  let s = Text_io.of_prose "Scenario: CRLF\r\n(1) First thing.\r\n(2) Second thing.\r\n" in
  Alcotest.(check int) "two events" 2 (List.length s.Scen.events);
  match s.Scen.events with
  | Event.Simple { text; _ } :: _ ->
      Alcotest.(check string) "trimmed" "First thing." text
  | _ -> Alcotest.fail "expected simple events"

let test_deeply_nested_events () =
  (* 30 levels of nested optionals still linearize within the cap *)
  let rec nest depth =
    if depth = 0 then Event.typed ~id:"leaf" ~event_type:"e" []
    else Event.Optional { id = Printf.sprintf "o%d" depth; body = [ nest (depth - 1) ] }
  in
  let s = Scen.scenario ~id:"deep" ~name:"Deep" [ nest 30 ] in
  let set = Scen.make_set ~id:"x" ~name:"X" ontology [ s ] in
  let config = { Linearize.iteration_unroll = 1; max_traces = 8 } in
  let { Linearize.traces; truncated } = Linearize.scenario ~config set s in
  Alcotest.(check bool) "capped" true truncated;
  Alcotest.(check bool) "within bound" true (List.length traces <= 8);
  Alcotest.(check int) "depth accessor" 31 (Event.depth (nest 30))

let test_engine_time_ties () =
  (* simultaneous actions run in scheduling order *)
  let engine = Dsim.Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> Dsim.Engine.schedule engine ~delay:1.0 (fun _ -> log := tag :: !log))
    [ "first"; "second"; "third" ];
  Dsim.Engine.run engine;
  Alcotest.(check (list string)) "fifo ties" [ "first"; "second"; "third" ]
    (List.rev !log)

let test_self_message () =
  (* a node can message itself *)
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  let got = ref 0 in
  Dsim.Network.add_node network ~on_receive:(fun _ _ -> incr got) "a";
  ignore (Dsim.Network.send network ~src:"a" ~dst:"a" "note");
  Dsim.Engine.run engine;
  Alcotest.(check int) "delivered to self" 1 !got

let suite =
  [
    Alcotest.test_case "empty scenario" `Quick test_empty_scenario;
    Alcotest.test_case "zero-trace scenario" `Quick test_zero_trace_scenario;
    Alcotest.test_case "single-component architecture" `Quick
      test_single_component_architecture;
    Alcotest.test_case "empty scenario set" `Quick test_empty_set_evaluation;
    Alcotest.test_case "empty ontology and mapping" `Quick test_empty_ontology_and_mapping;
    Alcotest.test_case "empty architecture" `Quick test_empty_architecture;
    Alcotest.test_case "unicode round trip" `Quick test_unicode_text_roundtrip;
    Alcotest.test_case "CRLF prose" `Quick test_whitespace_and_crlf_prose;
    Alcotest.test_case "deeply nested events" `Quick test_deeply_nested_events;
    Alcotest.test_case "engine time ties" `Quick test_engine_time_ties;
    Alcotest.test_case "self messages" `Quick test_self_message;
  ]
