(* End-to-end pipeline tests through the umbrella Sosae API, plus the
   OWL export path. *)

let project =
  {
    Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
    architecture = Casestudies.Pims.architecture;
    mapping = Casestudies.Pims.mapping;
  }

let test_validate_pipeline () =
  let v = Core.Sosae.validate project in
  Alcotest.(check bool) "ok" true v.Core.Sosae.ok;
  Testutil.check_contains "report text"
    (Format.asprintf "%a" Core.Sosae.pp_validation v)
    "all artifacts valid";
  (* break each artifact and watch the right section light up *)
  let broken_mapping =
    Mapping.Build.map ~event_type:"ghost" ~to_:[ "nowhere" ] project.Core.Sosae.mapping
  in
  let v2 = Core.Sosae.validate { project with Core.Sosae.mapping = broken_mapping } in
  Alcotest.(check bool) "coverage problems found" true
    (v2.Core.Sosae.coverage_problems <> []);
  Alcotest.(check bool) "not ok" false v2.Core.Sosae.ok

let test_evaluate_pipeline () =
  let r = Core.Sosae.evaluate project in
  Alcotest.(check int) "22 results" 22 (List.length r.Walkthrough.Engine.results);
  Alcotest.(check bool) "consistent" true r.Walkthrough.Engine.consistent;
  Alcotest.(check bool) "unknown scenario" true
    (Core.Sosae.evaluate_scenario project "nope" = None)

let test_config_threading () =
  (* the Direct policy is stricter: hops may no longer pass through
     intervening components, so some PIMS hops fail *)
  let config = Walkthrough.Engine.config ~policy:Adl.Graph.Direct () in
  let routed = Core.Sosae.evaluate project in
  let direct = Core.Sosae.evaluate ~config project in
  let count_consistent r =
    List.length (List.filter Walkthrough.Verdict.is_consistent r.Walkthrough.Engine.results)
  in
  Alcotest.(check bool) "direct is no more permissive" true
    (count_consistent direct <= count_consistent routed)

let test_load_errors () =
  Alcotest.(check bool) "missing file" true
    (match
       Core.Sosae.load_project_result ~scenarios:"/nonexistent/s.xml"
         ~architecture:"/nonexistent/a.xml" ~mapping:"/nonexistent/m.xml"
     with
    | Error (Core.Sosae.Io_error { artifact = Core.Sosae.Scenarios; _ }) -> true
    | _ -> false);
  let tmp = Filename.temp_file "bad" ".xml" in
  let oc = open_out tmp in
  output_string oc "<notAScenarioSet/>";
  close_out oc;
  Alcotest.(check bool) "wrong schema" true
    (match Core.Sosae.load_project_result ~scenarios:tmp ~architecture:tmp ~mapping:tmp with
    | Error (Core.Sosae.Schema_error { artifact = Core.Sosae.Scenarios; _ }) -> true
    | _ -> false);
  (* in-memory loading reports the artifact slot instead of a file *)
  Alcotest.(check bool) "string loading, malformed XML" true
    (match
       Core.Sosae.project_of_strings ~scenarios:"<scenarioSet" ~architecture:""
         ~mapping:""
     with
    | Error (Core.Sosae.Xml_error { file = "<scenarios>"; _ }) -> true
    | _ -> false);
  (* the error message renders all three error classes distinctly *)
  Alcotest.(check bool) "schema error renders the artifact" true
    (match Core.Sosae.load_project_result ~scenarios:tmp ~architecture:tmp ~mapping:tmp with
    | Error e ->
        let m = Core.Sosae.load_error_to_string e in
        String.length m > 0
        && (let rec has i =
              i >= 0
              && (String.length m - i >= 12 && String.sub m i 12 = "scenario set" || has (i - 1))
            in
            has (String.length m - 12))
    | Ok _ -> false);
  Sys.remove tmp

let test_owl_export_pipeline () =
  let store = Core.Sosae.export_owl project in
  Alcotest.(check bool) "substantial export" true (Semweb.Store.size store > 100);
  (* the walkthrough's supertype fallback agrees with the OWL reasoner *)
  let via_reasoner =
    Semweb.Export.components_realizing store ~event_type:"system-downloads"
  in
  let via_mapping =
    List.sort String.compare
      (Mapping.Types.components_of project.Core.Sosae.mapping "system-downloads"
      @ Mapping.Types.components_of project.Core.Sosae.mapping "system-action")
  in
  Alcotest.(check (list string)) "reasoner agrees with mapping" via_mapping via_reasoner;
  (* turtle round trip of the full project export *)
  let reparsed = Semweb.Turtle.of_string (Semweb.Turtle.to_string store) in
  Alcotest.(check int) "turtle round trip" (Semweb.Store.size store)
    (Semweb.Store.size reparsed)

let test_behavioral_pipeline () =
  let bundle =
    Statechart.Bundle.make ~id:"pims-behavior" Casestudies.Pims_behavior.charts
  in
  let results = Core.Sosae.evaluate_behavioral project bundle in
  Alcotest.(check int) "all 22 executed" 22 (List.length results);
  (* get-share-prices is accepted behaviorally (download precedes save) *)
  let prices =
    List.find
      (fun r -> String.equal r.Walkthrough.Dynamic.scenario_id "get-share-prices")
      results
  in
  Alcotest.(check bool) "accepted" true prices.Walkthrough.Dynamic.ok

let test_version () =
  Alcotest.(check bool) "version string" true (String.length Core.Sosae.version > 0)

let suite =
  [
    Alcotest.test_case "validation pipeline" `Quick test_validate_pipeline;
    Alcotest.test_case "evaluation pipeline" `Quick test_evaluate_pipeline;
    Alcotest.test_case "policy threading" `Quick test_config_threading;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "OWL export pipeline" `Quick test_owl_export_pipeline;
    Alcotest.test_case "behavioral pipeline" `Quick test_behavioral_pipeline;
    Alcotest.test_case "version" `Quick test_version;
  ]
