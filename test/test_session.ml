(* Evaluation sessions (Sosae.Session): cache hits, replay- and
   fast-path revalidation after architecture edits, and equivalence
   with evaluating from scratch. *)

module Session = Core.Sosae.Session

let pims_project () =
  {
    Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
    architecture = Casestudies.Pims.architecture;
    mapping = Casestudies.Pims.mapping;
  }

let scenario_count = List.length Casestudies.Pims.scenario_set.Scenarioml.Scen.scenarios

let find_result (r : Walkthrough.Engine.set_result) id =
  List.find
    (fun s -> String.equal s.Walkthrough.Verdict.scenario_id id)
    r.Walkthrough.Engine.results

(* the Fig. 4 excision, as explicit ops against the session's current
   architecture *)
let loader_da_ops architecture =
  architecture.Adl.Structure.links
  |> List.filter (fun l ->
         let f = l.Adl.Structure.link_from.Adl.Structure.anchor
         and t = l.Adl.Structure.link_to.Adl.Structure.anchor in
         (f = "loader" && t = "data-access") || (f = "data-access" && t = "loader"))
  |> List.map (fun l -> Adl.Diff.Remove_link l.Adl.Structure.link_id)

let test_cache_hits () =
  let s = Session.create (pims_project ()) in
  let r1 = Session.evaluate s in
  Alcotest.(check bool) "initially consistent" true r1.Walkthrough.Engine.consistent;
  Alcotest.(check int) "all scenarios walked" scenario_count
    (Session.stats s).Session.evaluations;
  let r2 = Session.evaluate s in
  let st = Session.stats s in
  Alcotest.(check int) "no extra walks" scenario_count st.Session.evaluations;
  Alcotest.(check int) "all served from cache" scenario_count st.Session.cache_hits;
  Alcotest.(check bool) "second result identical" true (r1 = r2)

let test_excision_invalidates_selectively () =
  let s = Session.create (pims_project ()) in
  ignore (Session.evaluate s);
  let ops = loader_da_ops (Session.project s).Core.Sosae.architecture in
  Alcotest.(check bool) "links to excise found" true (ops <> []);
  Session.apply_diff s ops;
  let r = Session.evaluate s in
  let st = Session.stats s in
  (* a pure link removal takes the eager fast path: untouched entries
     are revalidated without replaying their query logs; only the
     scenarios whose walk crossed the excised links are replay-checked
     (and fail, since the links are gone) before re-walking *)
  let dirty = st.Session.evaluations - scenario_count in
  Alcotest.(check int) "untouched entries skip replay" 0 st.Session.replay_hits;
  Alcotest.(check int) "only touched entries replay-checked" dirty st.Session.replays;
  Alcotest.(check bool) "only the touched scenarios re-walked" true
    (dirty >= 1 && dirty < scenario_count);
  Alcotest.(check bool) "prices scenario now fails" false
    (Walkthrough.Verdict.is_consistent (find_result r "get-share-prices"));
  Alcotest.(check bool) "portfolio scenario served and consistent" true
    (Walkthrough.Verdict.is_consistent (find_result r "create-portfolio"));
  let fresh = Core.Sosae.evaluate (Session.project s) in
  Alcotest.(check bool) "equals a from-scratch evaluation" true (r = fresh)

let test_replay_revalidation () =
  let s = Session.create (pims_project ()) in
  ignore (Session.evaluate s);
  (* wholesale replacement cannot use the removal fast path: cached
     entries are revalidated by query-log replay instead *)
  Session.set_architecture s Casestudies.Pims.broken_architecture;
  let r = Session.evaluate s in
  let st = Session.stats s in
  Alcotest.(check bool) "replays ran" true (st.Session.replays > 0);
  Alcotest.(check bool) "unchanged verdicts reused via replay" true
    (st.Session.replay_hits >= 1);
  Alcotest.(check bool) "prices scenario now fails" false
    (Walkthrough.Verdict.is_consistent (find_result r "get-share-prices"));
  let fresh =
    Core.Sosae.evaluate
      { (pims_project ()) with
        Core.Sosae.architecture = Casestudies.Pims.broken_architecture
      }
  in
  Alcotest.(check bool) "equals a from-scratch evaluation" true (r = fresh)

let test_invalidate () =
  let s = Session.create (pims_project ()) in
  ignore (Session.evaluate s);
  Session.invalidate ~scenario:"create-portfolio" s;
  ignore (Session.evaluate s);
  Alcotest.(check int) "one scenario re-walked" (scenario_count + 1)
    (Session.stats s).Session.evaluations;
  Session.invalidate s;
  ignore (Session.evaluate s);
  Alcotest.(check int) "everything re-walked"
    (2 * scenario_count + 1)
    (Session.stats s).Session.evaluations

let test_evaluate_scenario () =
  let s = Session.create (pims_project ()) in
  (match Session.evaluate_scenario s "get-share-prices" with
  | Some r ->
      Alcotest.(check bool) "consistent" true (Walkthrough.Verdict.is_consistent r)
  | None -> Alcotest.fail "get-share-prices not found");
  Alcotest.(check bool) "unknown id" true (Session.evaluate_scenario s "nope" = None)

(* ---------------- equivalence under random edit sequences ---------- *)

let gen_arch_spec =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* m = int_range 0 2 in
    let* wiring =
      list_size (int_range 0 10) (pair (int_range 0 (n + m - 1)) (int_range 0 (n + m - 1)))
    in
    return (n, m, wiring))

let build_arch (n, m, wiring) =
  let brick i = if i < n then Printf.sprintf "c%d" i else Printf.sprintf "k%d" (i - n) in
  let base =
    List.fold_left
      (fun t i -> Adl.Build.add_component ~id:(Printf.sprintf "c%d" i) ~name:"C" t)
      (Adl.Build.create ~id:"rand" ~name:"Random" ())
      (List.init n Fun.id)
  in
  let base =
    List.fold_left
      (fun t i -> Adl.Build.add_connector ~id:(Printf.sprintf "k%d" i) ~name:"K" t)
      base (List.init m Fun.id)
  in
  List.fold_left
    (fun t (a, b) ->
      if a = b then t
      else
        match Adl.Build.biconnect t (brick a) (brick b) with
        | t -> t
        | exception Adl.Build.Duplicate _ -> t)
    base wiring

type edit = Retarget of (int * int * (int * int) list) | Drop_link of int

let gen_edit =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Retarget s) gen_arch_spec;
        map (fun i -> Drop_link i) (int_range 0 30);
      ])

let event_types = 5

let et i = Printf.sprintf "e%d" i

(* the project: a random chain-free architecture, a tiny ontology, a
   mapping of each event type onto one base component, and 1-3 random
   scenarios over those event types *)
let build_project spec scenario_specs =
  let architecture = build_arch spec in
  let n, _, _ = spec in
  let ontology =
    List.fold_left
      (fun o i ->
        Ontology.Build.add_event_type ~id:(et i) ~name:(et i) ~template:"something happens"
          o)
      (Ontology.Build.create ~id:"rand-o" ~name:"Random")
      (List.init event_types Fun.id)
  in
  let mapping =
    List.fold_left
      (fun m i ->
        Mapping.Build.map ~event_type:(et i) ~to_:[ Printf.sprintf "c%d" (i mod n) ] m)
      (Mapping.Build.create ~id:"rand-m" ~ontology ~architecture)
      (List.init event_types Fun.id)
  in
  let scenarios =
    List.mapi
      (fun j events ->
        Scenarioml.Scen.scenario
          ~id:(Printf.sprintf "sc%d" j)
          ~name:(Printf.sprintf "Scenario %d" j)
          (List.mapi
             (fun i e ->
               Scenarioml.Event.typed
                 ~id:(Printf.sprintf "ev%d-%d" j i)
                 ~event_type:(et e) [])
             events))
      scenario_specs
  in
  let set = Scenarioml.Scen.make_set ~id:"rand-s" ~name:"Random" ontology scenarios in
  { Core.Sosae.scenarios = set; architecture; mapping }

(* After arbitrary interleavings of whole-architecture retargets
   (applied as Adl.Diff edit scripts, exercising replay) and single
   link removals (exercising the eager fast path), the session's
   evaluation must equal evaluating its current project from scratch. *)
let prop_session_equals_fresh =
  QCheck2.Test.make ~name:"session: evaluate after random edits = fresh evaluate"
    ~count:75
    QCheck2.Gen.(
      tup3 gen_arch_spec
        (list_size (int_range 1 3) (list_size (int_range 1 5) (int_range 0 (event_types - 1))))
        (list_size (int_range 1 4) gen_edit))
    (fun (spec, scenario_specs, edits) ->
      let project = build_project spec scenario_specs in
      let session = Session.create project in
      let agrees () =
        let p = Session.project session in
        Session.evaluate session = Core.Sosae.evaluate p
      in
      agrees ()
      && List.for_all
           (fun edit ->
             let current = (Session.project session).Core.Sosae.architecture in
             (match edit with
             | Retarget spec' ->
                 Session.apply_diff session (Adl.Diff.diff current (build_arch spec'))
             | Drop_link i -> (
                 match current.Adl.Structure.links with
                 | [] -> ()
                 | links ->
                     let l = List.nth links (i mod List.length links) in
                     Session.apply_diff session
                       [ Adl.Diff.Remove_link l.Adl.Structure.link_id ]));
             agrees ())
           edits)

(* The domain-pool evaluation paths must be observationally equal to the
   sequential ones: same results in the same order, and — for sessions —
   the same cache statistics, since only stale walks fan out. *)
let prop_parallel_equals_sequential =
  QCheck2.Test.make ~name:"evaluate on a domain pool = sequential evaluate" ~count:50
    QCheck2.Gen.(
      tup3 gen_arch_spec
        (list_size (int_range 1 4) (list_size (int_range 1 5) (int_range 0 (event_types - 1))))
        (int_range 2 5))
    (fun (spec, scenario_specs, jobs) ->
      let project = build_project spec scenario_specs in
      Core.Sosae.evaluate ~jobs project = Core.Sosae.evaluate ~jobs:1 project
      && Core.Sosae.evaluate_suite ~jobs project
           project.Core.Sosae.scenarios.Scenarioml.Scen.scenarios
         = Core.Sosae.evaluate_suite ~jobs:1 project
             project.Core.Sosae.scenarios.Scenarioml.Scen.scenarios)

let prop_session_parallel_equals_sequential =
  QCheck2.Test.make ~name:"session: parallel evaluate = sequential, stats included"
    ~count:40
    QCheck2.Gen.(
      tup4 gen_arch_spec
        (list_size (int_range 1 4) (list_size (int_range 1 5) (int_range 0 (event_types - 1))))
        gen_arch_spec (int_range 2 5))
    (fun (spec, scenario_specs, spec', jobs) ->
      let run jobs =
        let project = build_project spec scenario_specs in
        let session = Session.create project in
        let first = Session.evaluate ~jobs session in
        (* an edit leaves a mix of cached, replayable and stale entries *)
        Session.set_architecture session (build_arch spec');
        let second = Session.evaluate ~jobs session in
        (first, second, Session.stats session)
      in
      run jobs = run 1)

let suite =
  [
    Alcotest.test_case "pims: cache hits on repeat evaluation" `Quick test_cache_hits;
    Alcotest.test_case "pims: excision re-evaluates only touched scenarios" `Quick
      test_excision_invalidates_selectively;
    Alcotest.test_case "pims: wholesale replacement revalidates by replay" `Quick
      test_replay_revalidation;
    Alcotest.test_case "invalidate forces re-evaluation" `Quick test_invalidate;
    Alcotest.test_case "evaluate_scenario through the cache" `Quick test_evaluate_scenario;
    QCheck_alcotest.to_alcotest prop_session_equals_fresh;
    QCheck_alcotest.to_alcotest prop_parallel_equals_sequential;
    QCheck_alcotest.to_alcotest prop_session_parallel_equals_sequential;
  ]
