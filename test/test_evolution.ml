(* Tests for co-evolution: ontology edits, scenario refactorings, and
   mapping synchronization (paper 7). *)

open Scenarioml

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"O"
  |> add_class ~id:"thing" ~name:"Thing"
  |> add_class ~id:"gadget" ~name:"Gadget" ~super:"thing"
  |> add_individual ~id:"g1" ~name:"the gadget" ~cls:"gadget"
  |> add_event_type ~id:"use" ~name:"use" ~actor:"thing"
       ~params:[ ("what", "gadget") ]
       ~template:"use {what}"
  |> add_event_type ~id:"use-hard" ~name:"use hard" ~super:"use" ~template:"use {what} hard"

(* ------------------------------ evolve ----------------------------- *)

let test_rename_event_type () =
  let o =
    Ontology.Evolve.apply ontology
      (Ontology.Evolve.Rename_event_type { old_id = "use"; new_id = "operate" })
  in
  Alcotest.(check bool) "renamed" true (Ontology.Types.find_event_type o "operate" <> None);
  Alcotest.(check bool) "old gone" true (Ontology.Types.find_event_type o "use" = None);
  (match Ontology.Types.find_event_type o "use-hard" with
  | Some e -> Alcotest.(check (option string)) "super follows" (Some "operate") e.Ontology.Types.event_super
  | None -> Alcotest.fail "subtype missing");
  Alcotest.(check bool) "still well-formed" true (Ontology.Wellformed.is_wellformed o)

let test_rename_class () =
  let o =
    Ontology.Evolve.apply ontology
      (Ontology.Evolve.Rename_class { old_id = "gadget"; new_id = "device" })
  in
  (match Ontology.Types.find_individual o "g1" with
  | Some i -> Alcotest.(check string) "individual follows" "device" i.Ontology.Types.ind_class
  | None -> Alcotest.fail "individual missing");
  (match Ontology.Types.find_event_type o "use" with
  | Some e ->
      Alcotest.(check string) "param follows" "device"
        (List.hd e.Ontology.Types.params).Ontology.Types.param_class
  | None -> Alcotest.fail "event missing");
  Alcotest.(check bool) "still well-formed" true (Ontology.Wellformed.is_wellformed o)

let test_remove_guards () =
  Alcotest.(check bool) "class with referents refuses" true
    (match Ontology.Evolve.apply ontology (Ontology.Evolve.Remove_class "gadget") with
    | exception Ontology.Evolve.Apply_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "supertype with subtypes refuses" true
    (match Ontology.Evolve.apply ontology (Ontology.Evolve.Remove_event_type "use") with
    | exception Ontology.Evolve.Apply_error _ -> true
    | _ -> false);
  (* removing the leaf works *)
  let o = Ontology.Evolve.apply ontology (Ontology.Evolve.Remove_event_type "use-hard") in
  Alcotest.(check bool) "leaf removed" true
    (Ontology.Types.find_event_type o "use-hard" = None)

let test_retemplate_and_add () =
  let o =
    Ontology.Evolve.apply_all ontology
      [
        Ontology.Evolve.Retemplate { event_id = "use"; template = "operate {what} now" };
        Ontology.Evolve.Add_class
          {
            Ontology.Types.class_id = "widget";
            class_name = "Widget";
            class_description = "";
            class_super = Some "thing";
          };
      ]
  in
  (match Ontology.Types.find_event_type o "use" with
  | Some e -> Alcotest.(check string) "template" "operate {what} now" e.Ontology.Types.template
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "class added" true (Ontology.Types.find_class o "widget" <> None);
  Alcotest.(check bool) "duplicate add refuses" true
    (match
       Ontology.Evolve.apply o
         (Ontology.Evolve.Add_class
            {
              Ontology.Types.class_id = "widget";
              class_name = "W";
              class_description = "";
              class_super = None;
            })
     with
    | exception Ontology.Evolve.Apply_error _ -> true
    | _ -> false)

(* ------------------------------ refactor --------------------------- *)

let base_set =
  let s1 =
    Scen.scenario ~id:"first" ~name:"First" ~actors:[ "g1" ]
      [
        Event.typed ~id:"e1" ~event_type:"use"
          [ Event.individual ~param:"what" "g1" ];
      ]
  in
  let s2 =
    Scen.scenario ~id:"second" ~name:"Second"
      [
        Event.Optional
          {
            id = "opt";
            body =
              [
                Event.typed ~id:"e2" ~event_type:"use"
                  [ Event.literal ~param:"what" "anything" ];
              ];
          };
        Event.Episode { id = "ep"; scenario = "first" };
      ]
  in
  Scen.make_set ~id:"s" ~name:"S" ontology [ s1; s2 ]

let test_full_coevolution () =
  (* rename the event type everywhere: ontology, scenarios, mapping *)
  let architecture =
    Adl.Build.(
      create ~id:"a" ~name:"A" ()
      |> add_component ~id:"c" ~name:"C" ~responsibilities:[ "r" ])
  in
  let mapping =
    Mapping.Build.(create ~id:"m" ~ontology ~architecture |> map ~event_type:"use" ~to_:[ "c" ])
  in
  let evolved_ontology =
    Ontology.Evolve.apply ontology
      (Ontology.Evolve.Rename_event_type { old_id = "use"; new_id = "operate" })
  in
  let evolved_set =
    base_set
    |> Refactor.rename_event_type ~old_id:"use" ~new_id:"operate"
    |> Refactor.with_ontology evolved_ontology
  in
  let evolved_mapping =
    Mapping.Build.rename_event_type ~old_id:"use" ~new_id:"operate" mapping
  in
  (* everything still validates and evaluates *)
  Alcotest.(check (list string)) "scenarios validate" []
    (List.map Validate.problem_to_string (Validate.check evolved_set));
  Alcotest.(check (list string)) "coverage total" []
    (List.map Mapping.Coverage.problem_to_string
       (Mapping.Coverage.check evolved_ontology architecture evolved_mapping));
  let r =
    Walkthrough.Engine.evaluate_set ~set:evolved_set ~architecture
      ~mapping:evolved_mapping ()
  in
  Alcotest.(check bool) "still consistent" true r.Walkthrough.Engine.consistent;
  (* nested events were renamed too *)
  let second = Scen.find_exn evolved_set "second" in
  Alcotest.(check (list string)) "nested rename" [ "operate" ]
    (Scen.typed_event_types second)

let test_rename_individual_and_scenario () =
  let set = Refactor.rename_individual ~old_id:"g1" ~new_id:"gadget-one" base_set in
  let first = Scen.find_exn set "first" in
  Alcotest.(check (list string)) "actor renamed" [ "gadget-one" ] first.Scen.actors;
  (match first.Scen.events with
  | [ Event.Typed { args = [ { Event.arg_value = Event.Individual v; _ } ]; _ } ] ->
      Alcotest.(check string) "arg renamed" "gadget-one" v
  | _ -> Alcotest.fail "unexpected events");
  let set2 = Refactor.rename_scenario ~old_id:"first" ~new_id:"primary" base_set in
  Alcotest.(check bool) "scenario renamed" true (Scen.find set2 "primary" <> None);
  let second = Scen.find_exn set2 "second" in
  Alcotest.(check (list string)) "episode follows" [ "primary" ] (Scen.episodes second)

let suite =
  [
    Alcotest.test_case "rename event type (supers follow)" `Quick test_rename_event_type;
    Alcotest.test_case "rename class (all referents follow)" `Quick test_rename_class;
    Alcotest.test_case "removals guard lingering references" `Quick test_remove_guards;
    Alcotest.test_case "retemplate and add" `Quick test_retemplate_and_add;
    Alcotest.test_case "full co-evolution round" `Quick test_full_coevolution;
    Alcotest.test_case "rename individuals and scenarios" `Quick
      test_rename_individual_and_scenario;
  ]
