(* Tests for the discrete-event simulator: heap, engine, network,
   runtime, and the dependability checkers. *)

(* ------------------------------ heap ------------------------------ *)

let test_heap_basic () =
  let h = Dsim.Heap.create () in
  Alcotest.(check bool) "empty" true (Dsim.Heap.is_empty h);
  Dsim.Heap.push h ~time:3.0 "c";
  Dsim.Heap.push h ~time:1.0 "a";
  Dsim.Heap.push h ~time:2.0 "b";
  Alcotest.(check int) "size" 3 (Dsim.Heap.size h);
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Dsim.Heap.peek_time h);
  let order = List.init 3 (fun _ -> match Dsim.Heap.pop h with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Dsim.Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Dsim.Heap.create () in
  List.iter (fun x -> Dsim.Heap.push h ~time:1.0 x) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> match Dsim.Heap.pop h with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "ties in insertion order" [ "first"; "second"; "third" ]
    order

let prop_heap_sorted =
  QCheck2.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) (float_bound_inclusive 1000.0))
    (fun times ->
      let h = Dsim.Heap.create () in
      List.iter (fun t -> Dsim.Heap.push h ~time:t t) times;
      let rec drain acc =
        match Dsim.Heap.pop h with Some (t, _) -> drain (t :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      List.length popped = List.length times
      && popped = List.sort compare popped)

(* ------------------------------ engine ---------------------------- *)

let test_engine_ordering () =
  let engine = Dsim.Engine.create () in
  let log = ref [] in
  Dsim.Engine.schedule engine ~delay:5.0 (fun e ->
      log := ("b", Dsim.Engine.now e) :: !log);
  Dsim.Engine.schedule engine ~delay:1.0 (fun e ->
      log := ("a", Dsim.Engine.now e) :: !log;
      (* actions may schedule more actions *)
      Dsim.Engine.schedule e ~delay:1.0 (fun e ->
          log := ("a2", Dsim.Engine.now e) :: !log));
  Dsim.Engine.run engine;
  Alcotest.(check (list (pair string (float 0.001)))) "order and clock"
    [ ("a", 1.0); ("a2", 2.0); ("b", 5.0) ]
    (List.rev !log);
  Alcotest.(check int) "drained" 0 (Dsim.Engine.pending engine)

let test_engine_until () =
  let engine = Dsim.Engine.create () in
  let count = ref 0 in
  List.iter
    (fun d -> Dsim.Engine.schedule engine ~delay:d (fun _ -> incr count))
    [ 1.0; 2.0; 3.0; 10.0 ];
  Dsim.Engine.run ~until:5.0 engine;
  Alcotest.(check int) "only early actions" 3 !count;
  Alcotest.(check int) "late action pending" 1 (Dsim.Engine.pending engine);
  Dsim.Engine.run engine;
  Alcotest.(check int) "all eventually" 4 !count

(* Clock semantics at the [until] boundary: a bounded run covers the
   whole window, so [now] lands exactly on [until] whether the last
   action ran exactly there, strictly earlier, or not at all. *)
let test_engine_until_clock () =
  (* an action exactly at the boundary executes, clock = until *)
  let engine = Dsim.Engine.create () in
  let ran_at = ref (-1.0) in
  Dsim.Engine.schedule engine ~delay:5.0 (fun e -> ran_at := Dsim.Engine.now e);
  Dsim.Engine.run ~until:5.0 engine;
  Alcotest.(check (float 0.0)) "exact-time action runs" 5.0 !ran_at;
  Alcotest.(check (float 0.0)) "clock at until" 5.0 (Dsim.Engine.now engine);
  (* an action strictly after the boundary stays queued, clock = until *)
  let engine = Dsim.Engine.create () in
  Dsim.Engine.schedule engine ~delay:2.0 (fun _ -> ());
  Dsim.Engine.schedule engine ~delay:9.0 (fun _ -> ());
  Dsim.Engine.run ~until:5.0 engine;
  Alcotest.(check int) "late action pending" 1 (Dsim.Engine.pending engine);
  Alcotest.(check (float 0.0)) "clock advances past last action to until" 5.0
    (Dsim.Engine.now engine);
  (* an empty window still advances the clock; an unbounded run does not *)
  let engine = Dsim.Engine.create () in
  Dsim.Engine.run ~until:3.0 engine;
  Alcotest.(check (float 0.0)) "empty bounded run reaches until" 3.0
    (Dsim.Engine.now engine);
  Dsim.Engine.run engine;
  Alcotest.(check (float 0.0)) "unbounded run leaves the clock" 3.0
    (Dsim.Engine.now engine)

let test_engine_negative_delay_clamped () =
  let engine = Dsim.Engine.create () in
  let seen = ref (-1.0) in
  Dsim.Engine.schedule engine ~delay:(-5.0) (fun e -> seen := Dsim.Engine.now e);
  Dsim.Engine.run engine;
  Alcotest.(check (float 0.0)) "clamped to now" 0.0 !seen

(* ------------------------------ network --------------------------- *)

let run_network ?config setup =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create ?config engine in
  setup network;
  Dsim.Engine.run engine;
  Dsim.Network.trace network

let test_network_delivery () =
  let received = ref [] in
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n
          ~on_receive:(fun _ m -> received := m.Dsim.Network.payload :: !received)
          "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "hello");
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "world"))
  in
  Alcotest.(check (list string)) "handler saw messages" [ "hello"; "world" ]
    (List.rev !received);
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "sent" 2 stats.Dsim.Checks.sent;
  Alcotest.(check int) "delivered" 2 stats.Dsim.Checks.delivered;
  Alcotest.(check (float 0.001)) "latency is the default" 1.0 stats.Dsim.Checks.mean_latency

let test_network_down_node_with_detector () =
  let failures = ref 0 in
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n ~on_failure:(fun _ _ -> incr failures) "a";
        Dsim.Network.add_node n "b";
        Dsim.Network.shutdown n "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "ping"))
  in
  Alcotest.(check int) "failure handler ran" 1 !failures;
  let v = Dsim.Checks.availability trace in
  Alcotest.(check bool) "alerted" true v.Dsim.Checks.alerted;
  Alcotest.(check int) "one down request" 1 v.Dsim.Checks.requests_to_down_nodes

let test_network_down_node_without_detector () =
  let failures = ref 0 in
  let config = { Dsim.Network.default_config with failure_detector = false } in
  let trace =
    run_network ~config (fun n ->
        Dsim.Network.add_node n ~on_failure:(fun _ _ -> incr failures) "a";
        Dsim.Network.add_node n "b";
        Dsim.Network.shutdown n "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "ping"))
  in
  Alcotest.(check int) "no failure handler" 0 !failures;
  let v = Dsim.Checks.availability trace in
  Alcotest.(check bool) "not alerted" false v.Dsim.Checks.alerted

let test_network_in_flight_loss () =
  (* the node goes down after the send but before delivery *)
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "ping");
        Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:0.5 (fun _ ->
            Dsim.Network.shutdown n "b"))
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "dropped in flight" 1 stats.Dsim.Checks.dropped;
  Alcotest.(check int) "nothing delivered" 0 stats.Dsim.Checks.delivered

let test_network_restart () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Network.shutdown n "b";
        Dsim.Network.restart n "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "ping"))
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "delivered after restart" 1 stats.Dsim.Checks.delivered

let test_network_random_loss () =
  let config =
    { Dsim.Network.default_config with drop_probability = 1.0; failure_detector = false }
  in
  let trace =
    run_network ~config (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "doomed"))
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "dropped" 1 stats.Dsim.Checks.dropped;
  Alcotest.(check int) "not delivered" 0 stats.Dsim.Checks.delivered

let test_fifo_vs_jitter () =
  let burst n net =
    Dsim.Network.add_node net "a";
    Dsim.Network.add_node net "b";
    for i = 0 to n - 1 do
      Dsim.Engine.schedule (Dsim.Network.engine net) ~delay:(0.1 *. float_of_int i)
        (fun _ -> ignore (Dsim.Network.send net ~src:"a" ~dst:"b" "m"))
    done
  in
  let fifo_trace =
    run_network
      ~config:{ Dsim.Network.default_config with jitter = 5.0; fifo = true }
      (burst 10)
  in
  Alcotest.(check bool) "fifo preserves order" true
    (Dsim.Checks.ordering fifo_trace).Dsim.Checks.preserved;
  let jittery_trace =
    run_network
      ~config:{ Dsim.Network.default_config with jitter = 5.0; fifo = false }
      (burst 10)
  in
  Alcotest.(check bool) "jitter breaks order" false
    (Dsim.Checks.ordering jittery_trace).Dsim.Checks.preserved

let test_deliveries_between () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  Dsim.Network.add_node network "a";
  Dsim.Network.add_node network "b";
  Dsim.Network.add_node network "c";
  ignore (Dsim.Network.send network ~src:"a" ~dst:"b" "one");
  ignore (Dsim.Network.send network ~src:"a" ~dst:"c" "other");
  ignore (Dsim.Network.send network ~src:"a" ~dst:"b" "two");
  Dsim.Engine.run engine;
  Alcotest.(check (list string)) "channel filtered, in order" [ "one"; "two" ]
    (List.map
       (fun m -> m.Dsim.Network.payload)
       (Dsim.Network.deliveries_between network ~src:"a" ~dst:"b"))

let test_latency_override () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Network.set_latency n ~src:"a" ~dst:"b" 7.5;
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "slow"))
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check (float 0.001)) "override honored" 7.5 stats.Dsim.Checks.max_latency

(* ------------------------------ faults ---------------------------- *)

let test_partition_blocks_and_heals () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Faults.apply n
          [ Dsim.Faults.Partition { groups = [ [ "a" ]; [ "b" ] ]; from_ = 0.0; until = 5.0 } ];
        (* delivered at t=3 (blocked) and t=8 (healed) *)
        Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:2.0 (fun _ ->
            ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "early"));
        Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:7.0 (fun _ ->
            ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "late")))
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "one dropped" 1 stats.Dsim.Checks.dropped;
  Alcotest.(check int) "one delivered" 1 stats.Dsim.Checks.delivered;
  Alcotest.(check bool) "partition drop reason" true
    (List.exists
       (function
         | Dsim.Network.Dropped { reason = Dsim.Network.Partitioned; _ } -> true
         | _ -> false)
       trace);
  (* partitions are silent: no failure notices *)
  Alcotest.(check bool) "silent" true
    (not
       (List.exists
          (function Dsim.Network.Failure_notice _ -> true | _ -> false)
          trace))

let test_partition_intra_group_flows () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a1";
        Dsim.Network.add_node n "a2";
        Dsim.Network.add_node n "b";
        Dsim.Faults.apply n
          [
            Dsim.Faults.Partition
              { groups = [ [ "a1"; "a2" ]; [ "b" ] ]; from_ = 0.0; until = 100.0 };
          ];
        ignore (Dsim.Network.send n ~src:"a1" ~dst:"a2" "intra");
        ignore (Dsim.Network.send n ~src:"a1" ~dst:"b" "inter"))
  in
  let delivered payload =
    List.exists
      (function
        | Dsim.Network.Delivered { message; _ } ->
            String.equal message.Dsim.Network.payload payload
        | _ -> false)
      trace
  in
  Alcotest.(check bool) "intra-group delivered" true (delivered "intra");
  Alcotest.(check bool) "inter-group dropped" false (delivered "inter")

let test_crash_restart_fault () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Faults.apply n
          [ Dsim.Faults.Crash_restart { node = "b"; at = 5.0; downtime = 5.0 } ];
        List.iter
          (fun d ->
            Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:d (fun _ ->
                ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "m")))
          [ 1.0; 6.0; 12.0 ])
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "two delivered (before and after)" 2 stats.Dsim.Checks.delivered;
  Alcotest.(check int) "one dropped (during)" 1 stats.Dsim.Checks.dropped

(* Overlapping partitions: the channel must stay blocked until the
   *last* covering partition lifts (blocks nest; an early unblock must
   not erase a later partition's block). *)
let test_overlapping_partitions () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Faults.apply n
          [
            Dsim.Faults.Partition { groups = [ [ "a" ]; [ "b" ] ]; from_ = 0.0; until = 10.0 };
            Dsim.Faults.Partition { groups = [ [ "a" ]; [ "b" ] ]; from_ = 5.0; until = 15.0 };
          ];
        (* t=12 delivery: inside the second window, after the first lifted *)
        Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:11.0 (fun _ ->
            ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "overlap"));
        (* t=17 delivery: both windows lifted *)
        Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:16.0 (fun _ ->
            ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "healed")))
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "overlap window still drops" 1 stats.Dsim.Checks.dropped;
  Alcotest.(check int) "after both lift, delivers" 1 stats.Dsim.Checks.delivered

let test_restart_never_crashed () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Faults.apply n [ Dsim.Faults.Restart { node = "b"; at = 2.0 } ];
        Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:3.0 (fun _ ->
            ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "m")))
  in
  (* a spurious restart is benign: recorded, node stays up, traffic flows *)
  Alcotest.(check bool) "restart recorded" true
    (List.exists
       (function
         | Dsim.Network.Restart { node = "b"; _ } -> true
         | _ -> false)
       trace);
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "still delivers" 1 stats.Dsim.Checks.delivered;
  Alcotest.(check int) "nothing dropped" 0 stats.Dsim.Checks.dropped

let test_crash_restart_zero_downtime () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        Dsim.Faults.apply n
          [ Dsim.Faults.Crash_restart { node = "b"; at = 5.0; downtime = 0.0 } ];
        (* shutdown and restart both fire at t=5, in plan order, before
           this same-instant delivery (faults were scheduled first) *)
        List.iter
          (fun d ->
            Dsim.Engine.schedule (Dsim.Network.engine n) ~delay:d (fun _ ->
                ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "m")))
          [ 4.0; 5.5 ])
  in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "zero downtime loses nothing" 2 stats.Dsim.Checks.delivered;
  Alcotest.(check int) "no drops" 0 stats.Dsim.Checks.dropped;
  Alcotest.(check bool) "both shutdown and restart recorded" true
    (List.exists (function Dsim.Network.Shutdown _ -> true | _ -> false) trace
    && List.exists (function Dsim.Network.Restart _ -> true | _ -> false) trace)

let test_faults_after_drain () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  Dsim.Network.add_node network "a";
  Dsim.Network.add_node network "b";
  ignore (Dsim.Network.send network ~src:"a" ~dst:"b" "first");
  Dsim.Engine.run engine;
  (* the engine has drained at t=1; a fault dated in the past clamps to
     now and still takes effect on the next run *)
  Dsim.Faults.apply network [ Dsim.Faults.Crash { node = "b"; at = 0.5 } ];
  ignore (Dsim.Network.send network ~src:"a" ~dst:"b" "second");
  Dsim.Engine.run engine;
  let trace = Dsim.Network.trace network in
  let stats = Dsim.Checks.stats trace in
  Alcotest.(check int) "first delivered" 1 stats.Dsim.Checks.delivered;
  Alcotest.(check int) "second dropped after late crash" 1 stats.Dsim.Checks.dropped;
  Alcotest.(check bool) "crash executed at the drained clock, not in the past" true
    (List.exists
       (function
         | Dsim.Network.Shutdown { node = "b"; at } -> at >= 1.0
         | _ -> false)
       trace)

let test_periodic_crashes_plan () =
  let plan = Dsim.Faults.periodic_crashes ~node:"x" ~period:10.0 ~downtime:2.0 ~count:3 in
  Alcotest.(check int) "three cycles" 3 (List.length plan);
  match plan with
  | Dsim.Faults.Crash_restart { at; _ } :: _ ->
      Alcotest.(check (float 0.001)) "first at one period" 10.0 at
  | _ -> Alcotest.fail "expected crash/restart faults"

let test_fault_sweep_monotone () =
  let points =
    Casestudies.Crash_sim.run_fault_sweep ~duration:50.0
      ~downtime_fractions:[ 0.0; 0.5; 0.9 ]
      ()
  in
  match
    List.map
      (fun (p : Casestudies.Crash_sim.fault_point) ->
        p.Casestudies.Crash_sim.stats.Dsim.Checks.delivery_ratio)
      points
  with
  | [ r0; r50; r90 ] ->
      Alcotest.(check (float 0.001)) "no downtime, full delivery" 1.0 r0;
      Alcotest.(check bool) "monotone degradation" true (r0 > r50 && r50 > r90)
  | _ -> Alcotest.fail "unexpected sweep shape"

(* ------------------------------ runtime --------------------------- *)

let ping_chart =
  Statechart.Types.chart ~id:"ping" ~component:"a" ~initial:"idle"
    [ Statechart.Types.state "idle"; Statechart.Types.state "done" ]
    [
      Statechart.Types.transition ~source:"idle" ~target:"idle" ~trigger:"go"
        ~outputs:[ "ping" ] ();
      Statechart.Types.transition ~source:"idle" ~target:"done" ~trigger:"pong" ();
    ]

let pong_chart =
  Statechart.Types.chart ~id:"pong" ~component:"b" ~initial:"idle"
    [ Statechart.Types.state "idle" ]
    [
      Statechart.Types.transition ~source:"idle" ~target:"idle" ~trigger:"ping"
        ~outputs:[ "pong" ] ();
    ]

let test_runtime_ping_pong () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  let runtime =
    Dsim.Runtime.create ~network
      [
        { Dsim.Runtime.peer_id = "a"; chart = ping_chart; routes = [ ("ping", "b") ] };
        { Dsim.Runtime.peer_id = "b"; chart = pong_chart; routes = [ ("pong", "a") ] };
      ]
  in
  Dsim.Runtime.inject runtime ~peer:"a" "go";
  Dsim.Engine.run engine;
  (match Dsim.Runtime.config_of runtime "a" with
  | Some config -> Alcotest.(check (list string)) "a finished" [ "done" ] config
  | None -> Alcotest.fail "peer a missing");
  let actions = Dsim.Runtime.actions runtime in
  Alcotest.(check int) "three reactions" 3 (List.length actions);
  Alcotest.(check (list string)) "triggers in order" [ "go"; "ping"; "pong" ]
    (List.map (fun a -> a.Dsim.Runtime.trigger) actions)

let test_runtime_failure_trigger () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  let chart =
    Statechart.Types.chart ~id:"c" ~component:"a" ~initial:"idle"
      [ Statechart.Types.state "idle"; Statechart.Types.state "alerted" ]
      [
        Statechart.Types.transition ~source:"idle" ~target:"idle" ~trigger:"go"
          ~outputs:[ "ping" ] ();
        Statechart.Types.transition ~source:"idle" ~target:"alerted"
          ~trigger:"networkFailure" ();
      ]
  in
  let runtime =
    Dsim.Runtime.create ~network
      [ { Dsim.Runtime.peer_id = "a"; chart; routes = [ ("ping", "ghost") ] } ]
  in
  Dsim.Runtime.inject runtime ~peer:"a" "go";
  Dsim.Engine.run engine;
  match Dsim.Runtime.config_of runtime "a" with
  | Some config -> Alcotest.(check (list string)) "alerted" [ "alerted" ] config
  | None -> Alcotest.fail "peer missing"

let test_trace_pp () =
  let trace =
    run_network (fun n ->
        Dsim.Network.add_node n "a";
        Dsim.Network.add_node n "b";
        ignore (Dsim.Network.send n ~src:"a" ~dst:"b" "x"))
  in
  let text = Dsim.Trace_pp.trace_to_string trace in
  Testutil.check_contains "sent line" text "SENT";
  Testutil.check_contains "delivered line" text "DELIVERED"

(* ------------------------------ arch_sim -------------------------- *)

let line_architecture =
  let open Adl.Build in
  create ~id:"line" ~name:"Line" ()
  |> add_component ~id:"a" ~name:"A"
  |> add_component ~id:"b" ~name:"B"
  |> add_component ~id:"c" ~name:"C"
  |> add_connector ~id:"k1" ~name:"K1"
  |> add_connector ~id:"k2" ~name:"K2"
  |> fun t ->
  biconnect t "a" "k1" |> fun t ->
  biconnect t "k1" "b" |> fun t ->
  biconnect t "b" "k2" |> fun t -> biconnect t "k2" "c"

let relay_chart component trigger output =
  Statechart.Types.chart
    ~id:(component ^ "-chart")
    ~component ~initial:"s"
    [ Statechart.Types.state "s" ]
    [ Statechart.Types.transition ~source:"s" ~target:"s" ~trigger ~outputs:[ output ] () ]

let test_arch_sim_relay () =
  let charts = [ relay_chart "a" "go" "ping"; relay_chart "b" "ping" "pong" ] in
  let sim = Dsim.Arch_sim.create ~architecture:line_architecture ~charts () in
  Dsim.Arch_sim.inject sim ~component:"a" "go";
  Dsim.Arch_sim.run sim;
  (* a emits ping -> k1 relays -> b fires, emits pong -> k2 relays -> c
     absorbs (and k1 relays pong back toward a, which absorbs it) *)
  Alcotest.(check bool) "c received pong" true
    (List.exists (String.equal "pong") (Dsim.Arch_sim.received_by sim "c"));
  Alcotest.(check (list (pair string string))) "reactions"
    [ ("a", "go"); ("b", "ping") ]
    (List.map (fun (c, t, _) -> (c, t)) (Dsim.Arch_sim.reactions sim))

let test_arch_sim_hop_budget () =
  (* a ring of connectors floods but terminates thanks to the budget *)
  let ring =
    let open Adl.Build in
    create ~id:"ring" ~name:"Ring" ()
    |> add_component ~id:"a" ~name:"A"
    |> add_connector ~id:"k1" ~name:"K1"
    |> add_connector ~id:"k2" ~name:"K2"
    |> add_connector ~id:"k3" ~name:"K3"
    |> fun t ->
    biconnect t "a" "k1" |> fun t ->
    biconnect t "k1" "k2" |> fun t ->
    biconnect t "k2" "k3" |> fun t -> biconnect t "k3" "k1"
  in
  let charts = [ relay_chart "a" "go" "flood" ] in
  let sim = Dsim.Arch_sim.create ~hop_budget:4 ~architecture:ring ~charts () in
  Dsim.Arch_sim.inject sim ~component:"a" "go";
  Dsim.Arch_sim.run sim;
  (* termination is the assertion; the trace is finite *)
  Alcotest.(check bool) "finite trace" true (List.length (Dsim.Arch_sim.trace sim) < 100)

let test_arch_sim_plain_components_absorb () =
  let charts = [ relay_chart "a" "go" "ping" ] in
  let sim = Dsim.Arch_sim.create ~architecture:line_architecture ~charts () in
  Dsim.Arch_sim.inject sim ~component:"a" "go";
  Dsim.Arch_sim.run sim;
  (* b has no chart: it absorbs ping, nothing reaches c *)
  Alcotest.(check (list string)) "nothing past b" []
    (Dsim.Arch_sim.received_by sim "c");
  Alcotest.(check bool) "b received it" true
    (List.exists (String.equal "ping") (Dsim.Arch_sim.received_by sim "b"))

(* --- property: with FIFO and no loss, every message is delivered
   exactly once and in order, whatever the send schedule --- *)

let prop_fifo_delivery =
  QCheck2.Test.make ~name:"fifo lossless networks deliver everything in order" ~count:50
    QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 10.0))
    (fun delays ->
      let engine = Dsim.Engine.create () in
      let network = Dsim.Network.create engine in
      Dsim.Network.add_node network "a";
      Dsim.Network.add_node network "b";
      List.iter
        (fun d ->
          Dsim.Engine.schedule engine ~delay:d (fun _ ->
              ignore (Dsim.Network.send network ~src:"a" ~dst:"b" "m")))
        delays;
      Dsim.Engine.run engine;
      let trace = Dsim.Network.trace network in
      let stats = Dsim.Checks.stats trace in
      let ordering = Dsim.Checks.ordering trace in
      stats.Dsim.Checks.sent = List.length delays
      && stats.Dsim.Checks.delivered = List.length delays
      && ordering.Dsim.Checks.preserved)

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "heap breaks ties by insertion" `Quick test_heap_fifo_ties;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    Alcotest.test_case "engine runs actions in time order" `Quick test_engine_ordering;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine until: clock boundary semantics" `Quick
      test_engine_until_clock;
    Alcotest.test_case "negative delays clamp" `Quick test_engine_negative_delay_clamped;
    Alcotest.test_case "network delivery" `Quick test_network_delivery;
    Alcotest.test_case "down node with failure detector" `Quick
      test_network_down_node_with_detector;
    Alcotest.test_case "down node without failure detector" `Quick
      test_network_down_node_without_detector;
    Alcotest.test_case "in-flight loss on shutdown" `Quick test_network_in_flight_loss;
    Alcotest.test_case "restart" `Quick test_network_restart;
    Alcotest.test_case "random loss" `Quick test_network_random_loss;
    Alcotest.test_case "fifo vs jitter ordering" `Quick test_fifo_vs_jitter;
    Alcotest.test_case "latency override" `Quick test_latency_override;
    Alcotest.test_case "deliveries between" `Quick test_deliveries_between;
    Alcotest.test_case "partition blocks and heals" `Quick test_partition_blocks_and_heals;
    Alcotest.test_case "partition: intra-group flows" `Quick
      test_partition_intra_group_flows;
    Alcotest.test_case "crash/restart fault" `Quick test_crash_restart_fault;
    Alcotest.test_case "overlapping partitions nest" `Quick test_overlapping_partitions;
    Alcotest.test_case "restart of a never-crashed node" `Quick
      test_restart_never_crashed;
    Alcotest.test_case "crash/restart with zero downtime" `Quick
      test_crash_restart_zero_downtime;
    Alcotest.test_case "faults applied after the engine drains" `Quick
      test_faults_after_drain;
    Alcotest.test_case "periodic crash plan" `Quick test_periodic_crashes_plan;
    Alcotest.test_case "fault sweep monotone" `Quick test_fault_sweep_monotone;
    Alcotest.test_case "runtime ping-pong" `Quick test_runtime_ping_pong;
    Alcotest.test_case "arch_sim: relay through the structure" `Quick test_arch_sim_relay;
    Alcotest.test_case "arch_sim: hop budget halts floods" `Quick test_arch_sim_hop_budget;
    Alcotest.test_case "arch_sim: chartless components absorb" `Quick
      test_arch_sim_plain_components_absorb;
    Alcotest.test_case "runtime failure trigger" `Quick test_runtime_failure_trigger;
    Alcotest.test_case "trace pretty printing" `Quick test_trace_pp;
    QCheck_alcotest.to_alcotest prop_fifo_delivery;
  ]
