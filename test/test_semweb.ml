(* Tests for the semantic-web substrate: store, Turtle, reasoner, and
   the ScenarioML export. *)

open Semweb

let v = Term.Vocab.sosae

let t s p o = Term.triple s p o

let test_store_basics () =
  let store = Store.create () in
  let tr = t (Term.iri (v "a")) (v "p") (Term.iri (v "b")) in
  Alcotest.(check bool) "added" true (Store.add store tr);
  Alcotest.(check bool) "dedup" false (Store.add store tr);
  Alcotest.(check int) "size" 1 (Store.size store);
  Alcotest.(check bool) "mem" true (Store.mem store tr);
  Alcotest.(check bool) "removed" true (Store.remove store tr);
  Alcotest.(check int) "empty" 0 (Store.size store);
  Alcotest.(check bool) "remove absent" false (Store.remove store tr)

let test_store_queries () =
  let store = Store.create () in
  let a = Term.iri (v "a") and b = Term.iri (v "b") and c = Term.iri (v "c") in
  ignore (Store.add_all store [ t a (v "p") b; t a (v "q") c; t b (v "p") c ]);
  Alcotest.(check int) "by subject" 2 (List.length (Store.query store ~subj:a ()));
  Alcotest.(check int) "by predicate" 2 (List.length (Store.query store ~pred:(v "p") ()));
  Alcotest.(check int) "by object" 2 (List.length (Store.query store ~obj:c ()));
  Alcotest.(check int) "exact" 1
    (List.length (Store.query store ~subj:a ~pred:(v "p") ~obj:b ()));
  Alcotest.(check int) "objects" 1 (List.length (Store.objects store ~subj:a ~pred:(v "p")));
  Alcotest.(check int) "subjects" 1 (List.length (Store.subjects store ~pred:(v "p") ~obj:c));
  Alcotest.(check int) "fold" 3 (Store.fold (fun _ n -> n + 1) store 0);
  let copy = Store.copy store in
  ignore (Store.add copy (t c (v "p") a));
  Alcotest.(check int) "copy is independent" 3 (Store.size store)

let test_term_rendering () =
  Alcotest.(check string) "iri" "<http://x/y>" (Term.to_string (Term.iri "http://x/y"));
  Alcotest.(check string) "blank" "_:b1" (Term.to_string (Term.blank "b1"));
  Alcotest.(check string) "lang" "\"hi\"@en" (Term.to_string (Term.lit ~lang:"en" "hi"));
  Testutil.check_contains "datatype"
    (Term.to_string (Term.lit ~datatype:"http://dt" "5"))
    "^^<http://dt>"

let test_turtle_roundtrip () =
  let store = Store.create () in
  let a = Term.iri (v "alpha") and b = Term.iri (v "beta") in
  ignore
    (Store.add_all store
       [
         t a Term.Vocab.rdf_type (Term.iri Term.Vocab.owl_class);
         t a Term.Vocab.rdfs_label (Term.lit "Alpha thing");
         t a (v "rel") b;
         t a (v "rel") (Term.blank "node1");
         t (Term.blank "node1") (v "val") (Term.lit ~lang:"en" "hello");
         t b (v "count") (Term.lit ~datatype:"http://www.w3.org/2001/XMLSchema#int" "3");
       ]);
  let turtle = Turtle.to_string store in
  let reparsed = Turtle.of_string turtle in
  Alcotest.(check int) "same size" (Store.size store) (Store.size reparsed);
  List.iter
    (fun tr ->
      if not (Store.mem reparsed tr) then
        Alcotest.failf "missing triple after round trip: %s" (Term.triple_to_string tr))
    (Store.to_list store)

let test_turtle_parsing_features () =
  let store =
    Turtle.of_string
      "@prefix ex: <http://example.org/> .\n\
       # a comment\n\
       ex:a a ex:Klass ;\n\
       \  ex:p ex:b, ex:c .\n\
       <http://example.org/d> ex:q \"lit\" ."
  in
  Alcotest.(check int) "triples" 4 (Store.size store);
  Alcotest.(check bool) "a keyword expands" true
    (Store.mem store
       (t (Term.iri "http://example.org/a") Term.Vocab.rdf_type
          (Term.iri "http://example.org/Klass")))

let test_turtle_errors () =
  let fails s = match Turtle.of_string s with exception Turtle.Parse_error _ -> true | _ -> false in
  Alcotest.(check bool) "unknown prefix" true (fails "nope:a nope:b nope:c .");
  Alcotest.(check bool) "missing dot" true (fails "@prefix ex: <http://e/> .\nex:a ex:b ex:c");
  Alcotest.(check bool) "unterminated string" true
    (fails "@prefix ex: <http://e/> .\nex:a ex:b \"oops .")

let test_reasoner_subclass () =
  let store = Store.create () in
  let cls n = Term.iri (v n) in
  ignore
    (Store.add_all store
       [
         t (cls "cat") Term.Vocab.rdfs_sub_class_of (cls "mammal");
         t (cls "mammal") Term.Vocab.rdfs_sub_class_of (cls "animal");
         t (Term.iri (v "tom")) Term.Vocab.rdf_type (cls "cat");
       ]);
  Alcotest.(check bool) "transitive subclass" true
    (Reason.entails store (t (cls "cat") Term.Vocab.rdfs_sub_class_of (cls "animal")));
  Alcotest.(check bool) "type inheritance" true
    (Reason.entails store (t (Term.iri (v "tom")) Term.Vocab.rdf_type (cls "animal")));
  Alcotest.(check int) "instances of animal" 1
    (List.length (Reason.instances_of store (v "animal")));
  Alcotest.(check (list string)) "subclasses" [ "animal"; "mammal"; "cat" ]
    (List.map
       (fun iri ->
         String.sub iri (String.length (v "")) (String.length iri - String.length (v "")))
       (Reason.subclasses_of store (v "animal")))

let test_reasoner_properties () =
  let store = Store.create () in
  let n x = Term.iri (v x) in
  ignore
    (Store.add_all store
       [
         t (n "hasPet") Term.Vocab.rdfs_sub_property_of (n "keeps");
         t (n "hasPet") Term.Vocab.rdfs_domain (n "person");
         t (n "hasPet") Term.Vocab.rdfs_range (n "animal");
         t (n "owns") Term.Vocab.owl_inverse_of (n "ownedBy");
         t (n "alice") (v "hasPet") (n "tom");
         t (n "alice") (v "owns") (n "house");
       ]);
  Alcotest.(check bool) "subproperty inheritance" true
    (Reason.entails store (t (n "alice") (v "keeps") (n "tom")));
  Alcotest.(check bool) "domain" true
    (Reason.entails store (t (n "alice") Term.Vocab.rdf_type (n "person")));
  Alcotest.(check bool) "range" true
    (Reason.entails store (t (n "tom") Term.Vocab.rdf_type (n "animal")));
  Alcotest.(check bool) "inverse" true
    (Reason.entails store (t (n "house") (v "ownedBy") (n "alice")))

let test_reasoner_clash () =
  let store = Store.create () in
  let n x = Term.iri (v x) in
  ignore
    (Store.add_all store
       [
         t (n "dog") Term.Vocab.owl_disjoint_with (n "cat");
         t (n "rex") Term.Vocab.rdf_type (n "dog");
         t (n "rex") Term.Vocab.rdf_type (n "cat");
         t (n "tom") Term.Vocab.rdf_type (n "cat");
       ]);
  let clashes = Reason.inconsistencies store in
  Alcotest.(check int) "one clash" 1 (List.length clashes);
  (match clashes with
  | [ c ] -> Alcotest.(check string) "rex" "<http://sosae.example.org/ns#rex>"
      (Term.to_string c.Reason.individual)
  | _ -> Alcotest.fail "expected exactly one clash");
  Alcotest.(check int) "clean store has none" 0
    (List.length (Reason.inconsistencies (Store.create ())))

let test_bgp_query () =
  let store = Store.create () in
  let n x = Term.iri (v x) in
  ignore
    (Store.add_all store
       [
         t (n "fire") Term.Vocab.rdf_type (n "org");
         t (n "police") Term.Vocab.rdf_type (n "org");
         t (n "fire") (v "partner") (n "police");
         t (n "police") (v "partner") (n "fire");
         t (n "fire") Term.Vocab.rdfs_label (Term.lit "Fire Dept");
       ]);
  (* single pattern, one variable *)
  let orgs =
    Query.select store
      [ Query.pattern (Query.v "x") (Query.iri Term.Vocab.rdf_type) (Query.iri (v "org")) ]
  in
  Alcotest.(check int) "two orgs" 2 (List.length orgs);
  (* join across two patterns with a shared variable *)
  let partnered =
    Query.select store
      [
        Query.pattern (Query.v "a") (Query.iri Term.Vocab.rdf_type) (Query.iri (v "org"));
        Query.pattern (Query.v "a") (Query.iri (v "partner")) (Query.v "b");
      ]
  in
  Alcotest.(check int) "two partnered pairs" 2 (List.length partnered);
  (* repeated variable forces equality: nobody partners themselves *)
  let selfies =
    Query.select store
      [ Query.pattern (Query.v "a") (Query.iri (v "partner")) (Query.v "a") ]
  in
  Alcotest.(check int) "no self partners" 0 (List.length selfies);
  (* literal constants *)
  Alcotest.(check bool) "ask with literal" true
    (Query.ask store
       [
         Query.pattern (Query.v "who") (Query.iri Term.Vocab.rdfs_label)
           (Query.lit "Fire Dept");
       ]);
  (* empty pattern list: one empty solution *)
  Alcotest.(check int) "empty query" 1 (List.length (Query.select store []));
  Testutil.check_contains "binding rendering"
    (Query.bindings_to_string (List.hd orgs))
    "?x ="

let test_bgp_query_with_reasoning () =
  let store = Store.create () in
  let n x = Term.iri (v x) in
  ignore
    (Store.add_all store
       [
         t (n "dept") Term.Vocab.rdfs_sub_class_of (n "org");
         t (n "fire") Term.Vocab.rdf_type (n "dept");
       ]);
  let q =
    [ Query.pattern (Query.v "x") (Query.iri Term.Vocab.rdf_type) (Query.iri (v "org")) ]
  in
  Alcotest.(check int) "raw store misses it" 0 (List.length (Query.select store q));
  Alcotest.(check int) "reasoned query finds it" 1
    (List.length (Query.select ~reason:true store q))

let test_bgp_on_crash_export () =
  (* which components realize which mapped event types, via BGP *)
  let store =
    Export.full_export Casestudies.Crash.ontology Casestudies.Crash.entity_mapping
  in
  let rows =
    Query.select store
      [
        Query.pattern (Query.v "event") (Query.iri (Term.Vocab.sosae "mapsTo"))
          (Query.v "component");
      ]
  in
  Alcotest.(check int) "one row per mapping link"
    (Mapping.Types.link_count Casestudies.Crash.entity_mapping)
    (List.length rows)

let test_export_ontology () =
  let store = Export.ontology_to_store Casestudies.Crash.ontology in
  Alcotest.(check bool) "non-empty" true (Store.size store > 50);
  (* subclass: send-request < send-message < communicates *)
  Alcotest.(check bool) "event subsumption exported" true
    (Reason.entails store
       (t
          (Term.iri (Export.iri_of "send-request"))
          Term.Vocab.rdfs_sub_class_of
          (Term.iri (Export.iri_of "communicates"))));
  (* organizations are individuals of the organization class *)
  Alcotest.(check int) "7 organizations" 7
    (List.length (Reason.instances_of store (Export.iri_of "organization")))

let test_export_mapping_query () =
  let store =
    Export.full_export Casestudies.Crash.ontology Casestudies.Crash.entity_mapping
  in
  let components = Export.components_realizing store ~event_type:"send-request" in
  Alcotest.(check (list string)) "inherited realization"
    [ "communication-manager"; "sharing-info-manager"; "user-interface" ]
    components

let suite =
  [
    Alcotest.test_case "store add/remove/dedup" `Quick test_store_basics;
    Alcotest.test_case "store queries" `Quick test_store_queries;
    Alcotest.test_case "term rendering" `Quick test_term_rendering;
    Alcotest.test_case "turtle round trip" `Quick test_turtle_roundtrip;
    Alcotest.test_case "turtle parsing features" `Quick test_turtle_parsing_features;
    Alcotest.test_case "turtle errors" `Quick test_turtle_errors;
    Alcotest.test_case "reasoner: subclass rules" `Quick test_reasoner_subclass;
    Alcotest.test_case "reasoner: property rules" `Quick test_reasoner_properties;
    Alcotest.test_case "reasoner: disjointness clashes" `Quick test_reasoner_clash;
    Alcotest.test_case "BGP queries" `Quick test_bgp_query;
    Alcotest.test_case "BGP queries over the closure" `Quick test_bgp_query_with_reasoning;
    Alcotest.test_case "BGP over the CRASH export" `Quick test_bgp_on_crash_export;
    Alcotest.test_case "export: CRASH ontology" `Quick test_export_ontology;
    Alcotest.test_case "export: mapping query via reasoner" `Quick
      test_export_mapping_query;
  ]
