(* The deterministic simulation harness (lib/simtest) as a tier-1
   suite: a bounded seed matrix, the token syntax, the shrinker, and
   directed regression tests for the failure modes the simulator is
   built around — a poisoned journal, a compaction outrunning a
   replica's cursor, and follow-primary retries against an
   unreachable primary.

   [SOSAE_SIMTEST_SEED=n] replays a single seed (with the full CLI op
   count) instead of the matrix — the knob CI prints in a failing
   seed's repro. The heavy seed matrix lives in the [sosae simtest]
   CLI step of CI; this suite keeps a smaller one so plain
   [dune runtest] still exercises the whole stack under faults. *)

let group = { Store.Journal.Group.window = 0.0; max_batch = 64 }

(* a huge compact threshold: compaction happens only when a test asks
   for it ([checkpoint]), never behind a mutation's back *)
let compact_bytes = 1 lsl 30

let open_registry env =
  let persist, (recovery : Server.Persist.recovery) =
    Server.Persist.open_ ~fsync:Store.Journal.Always ~group ~compact_bytes
      ~env:(Simtest.Env.fs env) "sim"
  in
  let registry = Server.Registry.create ~jobs:1 ~persist () in
  ignore (Server.Registry.recover registry recovery.Server.Persist.mutations);
  (persist, registry)

let add_session registry slot =
  let id = Simtest.Model.session_id slot in
  match
    Server.Registry.add registry ~id
      ~source:
        ( Simtest.Model.scenarios_xml (),
          Simtest.Model.architecture_xml (),
          Simtest.Model.mapping_xml () )
      (Simtest.Model.project_of_arch (Simtest.Model.base_arch ()))
  with
  | Ok () -> ()
  | Error `Conflict -> Alcotest.failf "conflict creating %s" id

(* ------------------------------------------------------------------ *)
(* Seed matrix                                                        *)
(* ------------------------------------------------------------------ *)

let run_one ~seed ~ops =
  match Simtest.Sim.run_seed ~seed ~ops with
  | Ok () -> ()
  | Error fail ->
      Alcotest.failf "seed %d:@\n%a" seed Simtest.Sim.report_failure fail

let test_seed_matrix () =
  match Sys.getenv_opt "SOSAE_SIMTEST_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some seed -> run_one ~seed ~ops:200
      | None ->
          Alcotest.failf "SOSAE_SIMTEST_SEED must be an integer, got %S" s)
  | None ->
      for seed = 1 to 8 do
        run_one ~seed ~ops:80
      done

(* ------------------------------------------------------------------ *)
(* Token syntax and shrinking                                         *)
(* ------------------------------------------------------------------ *)

let test_token_roundtrip () =
  let ops = Simtest.Gen.gen ~seed:42 ~ops:150 in
  let s = Simtest.Gen.ops_to_string ops in
  match Simtest.Gen.ops_of_string s with
  | Error e -> Alcotest.failf "generated tokens did not parse back: %s" e
  | Ok ops' ->
      Alcotest.(check string) "round-trip" s (Simtest.Gen.ops_to_string ops')

let test_token_rejects_garbage () =
  List.iter
    (fun s ->
      match Simtest.Gen.ops_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed nonsense token %S" s)
    [ "create"; "crash:x"; "diff:1"; "create:1/fsync"; "frobnicate:3" ]

let test_shrinker_minimizes () =
  let ops = Simtest.Gen.gen ~seed:1 ~ops:60 in
  (* synthetic predicate: fails iff at least two Create ops remain *)
  let fails l =
    List.length
      (List.filter (function Simtest.Gen.Create _ -> true | _ -> false) l)
    >= 2
  in
  Alcotest.(check bool) "seed sequence triggers it" true (fails ops);
  let shrunk = Simtest.Shrink.shrink ~fails ops in
  Alcotest.(check bool) "shrunk sequence still fails" true (fails shrunk);
  Alcotest.(check int) "shrunk to the minimal two ops" 2 (List.length shrunk);
  (* and the repro it would print parses back to the same sequence *)
  let cmd = Simtest.Sim.repro_command shrunk in
  Testutil.check_contains "repro command" cmd "simtest --replay"

(* ------------------------------------------------------------------ *)
(* Poisoned journal (regression)                                      *)
(* ------------------------------------------------------------------ *)

(* A failed fsync poisons the journal: the ack the caller never got
   must not silently turn into durability later, so every further
   stage/await/ship re-raises the original error until a reopen. *)
let test_poisoned_journal_refuses_writes () =
  let env = Simtest.Env.create () in
  let persist, registry = open_registry env in
  add_session registry 0;
  Simtest.Env.arm env (Simtest.Env.Fsync_fail 1);
  let e1 =
    try
      add_session registry 1;
      Alcotest.fail "add succeeded through a failed fsync"
    with Unix.Unix_error (Unix.EIO, _, _) as e -> e
  in
  Simtest.Env.disarm env;
  (* the faulty fsync was single-shot, but the poison is sticky: the
     next mutation raises the SAME stable error, and its memory insert
     is rolled back *)
  let e2 =
    try
      add_session registry 2;
      None
    with Unix.Unix_error _ as e -> Some e
  in
  Alcotest.(check bool) "same error every time" true (Some e1 = e2);
  Alcotest.(check (list string))
    "rejected mutation rolled back, zombie staged one kept" [ "s0"; "s1" ]
    (Server.Registry.ids registry);
  (* shipping refuses too — a replica must not be fed records the
     primary can no longer call durable *)
  (try
     ignore (Server.Persist.ship persist ~after:0L);
     Alcotest.fail "ship succeeded on a poisoned journal"
   with Unix.Unix_error (Unix.EIO, _, _) -> ());
  (* a reopen recovers everything that hit the disk and clears the
     poison: both staged sessions are back and writes work again *)
  (try Server.Persist.close persist with _ -> ());
  let _persist, registry = open_registry env in
  Alcotest.(check (list string))
    "reopen recovers both staged sessions" [ "s0"; "s1" ]
    (Server.Registry.ids registry);
  add_session registry 2;
  Alcotest.(check (list string))
    "writes work again after reopen" [ "s0"; "s1"; "s2" ]
    (Server.Registry.ids registry)

(* The API boundary: a poisoned journal answers 500 [internal] — a
   response, not a hang — while reads keep serving. *)
let test_poisoned_journal_answers_500 () =
  let env = Simtest.Env.create () in
  let persist, (recovery : Server.Persist.recovery) =
    Server.Persist.open_ ~fsync:Store.Journal.Always ~group ~compact_bytes
      ~env:(Simtest.Env.fs env) "sim"
  in
  let ctx = Server.Api.make_ctx ~jobs:1 ~persist () in
  ignore
    (Server.Registry.recover ctx.Server.Api.registry
       recovery.Server.Persist.mutations);
  let request meth target path body =
    {
      Server.Http.meth;
      target;
      path;
      query = [];
      version = `Http_1_1;
      headers = [];
      body;
    }
  in
  let create_body id =
    Jsonlight.to_string
      (Jsonlight.Obj
         [
           ("id", Jsonlight.String id);
           ("scenarios", Jsonlight.String (Simtest.Model.scenarios_xml ()));
           ( "architecture",
             Jsonlight.String (Simtest.Model.architecture_xml ()) );
           ("mapping", Jsonlight.String (Simtest.Model.mapping_xml ()));
         ])
  in
  let post_session id =
    let _, r =
      Server.Api.handle ctx
        (request Server.Http.POST "/sessions" [ "sessions" ] (create_body id))
    in
    r
  in
  Alcotest.(check int) "create works before the fault" 201
    (post_session "s0").Server.Http.status;
  Simtest.Env.arm env (Simtest.Env.Fsync_fail 1);
  let r1 = post_session "s1" in
  Alcotest.(check int) "failed fsync answers 500" 500 r1.Server.Http.status;
  Testutil.check_contains "category" r1.Server.Http.resp_body
    "\"category\":\"internal\"";
  Simtest.Env.disarm env;
  let r2 = post_session "s2" in
  Alcotest.(check int) "poisoned journal keeps answering 500" 500
    r2.Server.Http.status;
  Testutil.check_contains "category" r2.Server.Http.resp_body
    "\"category\":\"internal\"";
  (* reads don't touch the journal and keep serving *)
  let _, r =
    Server.Api.handle ctx
      (request Server.Http.GET "/sessions" [ "sessions" ] "")
  in
  Alcotest.(check int) "reads still answered" 200 r.Server.Http.status

(* ------------------------------------------------------------------ *)
(* Compaction outruns a replica's cursor                              *)
(* ------------------------------------------------------------------ *)

(* A replica paused at seq 1 while the primary compacted everything it
   still needed: the next fetch must be a [reset] snapshot bootstrap
   the replica can rebuild from, not a gap or a stall. *)
let test_ship_gap_resets () =
  let env = Simtest.Env.create () in
  let persist, registry = open_registry env in
  add_session registry 0;
  (* the replica applies the tail up to seq 1 *)
  let batch = Server.Persist.ship persist ~after:0L in
  Alcotest.(check bool) "first fetch is a plain tail" false
    batch.Store.Ship.reset;
  let replica = Server.Registry.create ~jobs:1 () in
  let apply batch =
    if batch.Store.Ship.reset || batch.Store.Ship.data <> "" then
      match
        Server.Registry.apply_shipped replica ~reset:batch.Store.Ship.reset
          batch.Store.Ship.data
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad batch: %s" e
  in
  apply batch;
  Alcotest.(check (list string))
    "replica caught up to seq 1" [ "s0" ]
    (Server.Registry.ids replica);
  (* primary moves on and compacts: the records the cursor still
     needs are folded into the snapshot *)
  add_session registry 1;
  ignore
    (Server.Registry.apply_diff registry "s0" ~ops:(fun _ ->
         [ Adl.Diff.Rename_element { old_id = "booking"; new_id = "booking2" } ]));
  Server.Registry.checkpoint registry;
  let batch = Server.Persist.ship persist ~after:1L in
  Alcotest.(check bool) "gap answered with a reset bootstrap" true
    batch.Store.Ship.reset;
  apply batch;
  Alcotest.(check string) "replica rebuilt to the primary's state"
    (Simtest.Model.registry_digest registry)
    (Simtest.Model.registry_digest replica);
  (* caught up: the next poll from the covered frontier is empty *)
  let covered = Server.Persist.covered_seq persist in
  let batch = Server.Persist.ship persist ~after:covered in
  Alcotest.(check bool) "caught-up fetch is not a reset" false
    batch.Store.Ship.reset;
  Alcotest.(check string) "caught-up fetch is empty" "" batch.Store.Ship.data

(* ------------------------------------------------------------------ *)
(* Follow-primary against an unreachable primary                      *)
(* ------------------------------------------------------------------ *)

(* one end of a socketpair with a canned 421 already buffered: a
   "replica" that rejects the mutation and advertises its primary,
   with no listener involved *)
let canned_421 ~primary =
  let body =
    Printf.sprintf
      "{\"error\":{\"category\":\"read_only\",\"message\":\"replica is \
       read-only\",\"primary\":%S}}"
      primary
  in
  Printf.sprintf
    "HTTP/1.1 421 Misdirected Request\r\n\
     Content-Type: application/json\r\n\
     Content-Length: %d\r\n\
     \r\n\
     %s"
    (String.length body) body

let replica_stub peers ~primary () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  peers := b :: !peers;
  let canned = canned_421 ~primary in
  ignore (Unix.write_substring b canned 0 (String.length canned));
  Server.Client.of_fd a

let test_follow_primary_unreachable () =
  let peers = ref [] and sleeps = ref [] in
  let connects = ref 0 and redirects = ref [] in
  let connect () =
    incr connects;
    replica_stub peers ~primary:"10.0.0.9:4444" ()
  in
  let connect_to (host, port) =
    redirects := (host, port) :: !redirects;
    raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", host))
  in
  let policy =
    {
      Server.Client.max_attempts = 4;
      base_delay = 0.05;
      multiplier = 2.0;
      max_delay = 0.08;
      jitter = 0.0;
    }
  in
  let result =
    Server.Client.with_retry ~policy ~seed:7
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      ~follow_primary:true ~connect_to ~connect (fun c ->
        Server.Client.get c "/sessions")
  in
  List.iter Unix.close !peers;
  (match result with
  | Error _ -> ()
  | Ok r ->
      Alcotest.failf "expected an eventual error, got status %d"
        r.Server.Client.status);
  Alcotest.(check int) "exactly one connection to the replica" 1 !connects;
  Alcotest.(check int) "every remaining attempt chased the primary" 3
    (List.length !redirects);
  List.iter
    (fun target ->
      Alcotest.(check (pair string int))
        "advertised address parsed" ("10.0.0.9", 4444) target)
    !redirects;
  (* the redirect itself skips the backoff sleep; the refused connects
     then follow the deterministic capped schedule *)
  let schedule = Server.Client.backoff_schedule ~seed:7 policy in
  Alcotest.(check (list (float 1e-9)))
    "capped backoff between refused connects" (List.tl schedule)
    (List.rev !sleeps)

let test_follow_primary_never_loops () =
  let peers = ref [] and sleeps = ref [] in
  let conns = ref 0 in
  (* the "primary" is itself a replica stub: every hop answers 421
     advertising someone else, forever *)
  let connect () =
    incr conns;
    replica_stub peers ~primary:"10.0.0.9:4444" ()
  in
  let connect_to _ =
    incr conns;
    replica_stub peers ~primary:"10.0.0.9:4444" ()
  in
  let policy =
    {
      Server.Client.max_attempts = 3;
      base_delay = 0.05;
      multiplier = 2.0;
      max_delay = 0.08;
      jitter = 0.0;
    }
  in
  let result =
    Server.Client.with_retry ~policy ~seed:0
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      ~follow_primary:true ~connect_to ~connect (fun c ->
        Server.Client.get c "/sessions")
  in
  List.iter Unix.close !peers;
  (match result with
  | Ok r ->
      Alcotest.(check int) "the final 421 is returned as-is" 421
        r.Server.Client.status
  | Error e -> Alcotest.failf "expected the last 421 back, got error %s" e);
  Alcotest.(check int) "attempts bounded by the policy" policy.max_attempts
    !conns;
  Alcotest.(check (list (float 1e-9)))
    "redirects never burn a backoff sleep" [] !sleeps

let suite =
  [
    ("seed matrix", `Slow, test_seed_matrix);
    ("token round-trip", `Quick, test_token_roundtrip);
    ("token parser rejects garbage", `Quick, test_token_rejects_garbage);
    ("shrinker minimizes", `Quick, test_shrinker_minimizes);
    ( "poisoned journal refuses writes",
      `Quick,
      test_poisoned_journal_refuses_writes );
    ("poisoned journal answers 500", `Quick, test_poisoned_journal_answers_500);
    ("compaction gap ships a reset", `Quick, test_ship_gap_resets);
    ( "follow-primary: unreachable primary",
      `Quick,
      test_follow_primary_unreachable );
    ("follow-primary: never loops", `Quick, test_follow_primary_never_loops);
  ]
