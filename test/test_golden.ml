(* Golden-trace tests: the exact Trace_pp rendering of deterministic
   Arch_sim runs on the CRASH and PIMS behavioral bundles is pinned
   under test/golden/. A refactor of the hop-budget or relay semantics
   that changes delivery order (or timing, or hop budgets) shows up as
   a verbatim diff here instead of sliding through unit tests that only
   count events.

   To regenerate after an *intended* semantics change:
   SOSAE_REGEN_GOLDEN=1 dune runtest; then review the diff. *)

let golden_dir = "golden"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden name actual =
  let path = Filename.concat golden_dir (name ^ ".expected") in
  if Sys.getenv_opt "SOSAE_REGEN_GOLDEN" <> None then begin
    let oc = open_out_bin path in
    output_string oc actual;
    close_out oc
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf "missing golden file %s (run with SOSAE_REGEN_GOLDEN=1)" path
  else begin
    let expected = read_file path in
    if not (String.equal expected actual) then
      Alcotest.failf "trace for %S diverged from %s:\n--- expected ---\n%s\n--- actual ---\n%s"
        name path expected actual
  end

(* CRASH entity architecture, outgoing message path: the operator
   composes a message at the UI and it flows down the C2 layers to the
   network (crash_behavior's bundle). *)
let test_crash_entity_outgoing () =
  let sim =
    Dsim.Arch_sim.create ~architecture:Casestudies.Crash.entity_architecture
      ~charts:Casestudies.Crash_behavior.charts ()
  in
  Dsim.Arch_sim.inject sim ~component:"user-interface" "compose";
  Dsim.Arch_sim.run sim;
  check_golden "crash_entity_outgoing" (Dsim.Trace_pp.trace_to_string (Dsim.Arch_sim.trace sim))

(* CRASH high-level architecture: the Fire C&C initiates a request that
   crosses the emergency network to the Police C&C, which notifies its
   own peers (fire/police statecharts). *)
let test_crash_request_flow () =
  let sim =
    Dsim.Arch_sim.create
      ~architecture:(Casestudies.Crash.high_level_architecture ~orgs:2 ())
      ~charts:[ Casestudies.Crash.fire_chart; Casestudies.Crash.police_chart ]
      ()
  in
  Dsim.Arch_sim.inject sim ~component:"fire-cc" "initiate";
  Dsim.Arch_sim.run sim;
  check_golden "crash_request_flow" (Dsim.Trace_pp.trace_to_string (Dsim.Arch_sim.trace sim))

(* PIMS price-feed campaign charts on the layered architecture: one
   deterministic trial (no faults, no jitter) of the campaign's relay
   bundle, master-controller -> ui-bus -> loader -> internet ->
   remote-price-db. *)
let test_pims_price_feed () =
  let sim =
    Dsim.Arch_sim.create ~architecture:Casestudies.Pims.architecture
      ~charts:Casestudies.Campaigns.price_feed_charts ()
  in
  Dsim.Arch_sim.inject sim ~component:"master-controller" "user-initiates";
  Dsim.Arch_sim.run sim;
  check_golden "pims_price_feed" (Dsim.Trace_pp.trace_to_string (Dsim.Arch_sim.trace sim))

let suite =
  [
    Alcotest.test_case "crash entity outgoing message" `Quick test_crash_entity_outgoing;
    Alcotest.test_case "crash 2-peer request flow" `Quick test_crash_request_flow;
    Alcotest.test_case "pims price-feed relay" `Quick test_pims_price_feed;
  ]
