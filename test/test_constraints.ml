(* Tests for the requirements-constraint language (paper 3.5). *)

open Styles

let arch =
  (* c1 -> srv -> c2, plus a backdoor c1 -> c2 used by tests *)
  let open Adl.Build in
  create ~id:"net" ~name:"Net" ()
  |> add_component ~id:"c1" ~name:"Client 1" ~responsibilities:[ "r" ]
  |> add_component ~id:"c2" ~name:"Client 2" ~responsibilities:[ "r" ]
  |> add_component ~id:"srv" ~name:"Server" ~responsibilities:[ "r" ]
  |> add_connector ~id:"wire" ~name:"Wire"
  |> fun t ->
  biconnect t "c1" "wire" |> fun t ->
  biconnect t "wire" "srv" |> fun t -> biconnect t "srv" "c2"

let with_backdoor = Adl.Build.biconnect arch "c1" "c2"

let rules violations = List.map (fun v -> v.Rule.rule) violations

let test_parse () =
  let text =
    "# comment line\n\
     connect c1 -> srv\n\
     \n\
     forbid c1 -> c2   # inline comment\n\
     route c1 -> c2 via srv\n\
     mediate c1 -> srv\n\
     acyclic\n"
  in
  let parsed = Constraint_lang.parse text in
  Alcotest.(check int) "five constraints" 5 (List.length parsed);
  (* to_string round-trips through parse *)
  let printed = String.concat "\n" (List.map Constraint_lang.to_string parsed) in
  Alcotest.(check bool) "round trip" true (Constraint_lang.parse printed = parsed)

let test_parse_errors () =
  Alcotest.(check bool) "bad keyword" true
    (match Constraint_lang.parse "destroy a -> b" with
    | exception Constraint_lang.Syntax_error { line = 1; _ } -> true
    | _ -> false);
  Alcotest.(check bool) "line number" true
    (match Constraint_lang.parse "connect a -> b\nnonsense here" with
    | exception Constraint_lang.Syntax_error { line = 2; _ } -> true
    | _ -> false)

let test_connect () =
  Alcotest.(check (list string)) "satisfied" []
    (rules (Constraint_lang.check arch [ Constraint_lang.Connect { src = "c1"; dst = "c2" } ]));
  let cut = Adl.Diff.excise_link_between arch "srv" "c2" in
  Alcotest.(check (list string)) "violated" [ "constraint.connect" ]
    (rules (Constraint_lang.check cut [ Constraint_lang.Connect { src = "c1"; dst = "c2" } ]))

let test_forbid () =
  Alcotest.(check (list string)) "reachable pair violates forbid" [ "constraint.forbid" ]
    (rules (Constraint_lang.check arch [ Constraint_lang.Forbid { src = "c1"; dst = "c2" } ]));
  let cut = Adl.Diff.excise_link_between arch "srv" "c2" in
  Alcotest.(check (list string)) "unreachable pair satisfies" []
    (rules (Constraint_lang.check cut [ Constraint_lang.Forbid { src = "c1"; dst = "c2" } ]))

let test_route_via () =
  (* the paper's example: clients must communicate through the server *)
  let c = [ Constraint_lang.Route_via { src = "c1"; dst = "c2"; via = "srv" } ] in
  Alcotest.(check (list string)) "mediated topology satisfies" []
    (rules (Constraint_lang.check arch c));
  Alcotest.(check (list string)) "backdoor bypass detected" [ "constraint.route" ]
    (rules (Constraint_lang.check with_backdoor c));
  let cut = Adl.Diff.excise_link_between arch "srv" "c2" in
  Alcotest.(check (list string)) "no path at all also violates" [ "constraint.route" ]
    (rules (Constraint_lang.check cut c))

let test_mediate () =
  Alcotest.(check (list string)) "connector-mediated ok" []
    (rules (Constraint_lang.check arch [ Constraint_lang.Mediate { src = "c1"; dst = "srv" } ]));
  (* c1 -> c2 must relay through srv (a component): not mediated *)
  Alcotest.(check (list string)) "component relay violates mediate" [ "constraint.mediate" ]
    (rules (Constraint_lang.check arch [ Constraint_lang.Mediate { src = "c1"; dst = "c2" } ]))

let test_acyclic () =
  Alcotest.(check (list string)) "biconnected graphs cycle" [ "constraint.acyclic" ]
    (rules (Constraint_lang.check arch [ Constraint_lang.Acyclic ]));
  let dag =
    let open Adl.Build in
    create ~id:"dag" ~name:"Dag" ()
    |> add_component ~id:"a" ~name:"A" ~responsibilities:[ "r" ]
    |> add_component ~id:"b" ~name:"B" ~responsibilities:[ "r" ]
    |> fun t -> connect t "a" "b"
  in
  Alcotest.(check (list string)) "dag is acyclic" []
    (rules (Constraint_lang.check dag [ Constraint_lang.Acyclic ]))

let test_unknown_elements () =
  Alcotest.(check (list string)) "unknown flagged" [ "constraint.unknown" ]
    (rules (Constraint_lang.check arch [ Constraint_lang.Connect { src = "ghost"; dst = "c1" } ]))

let test_engine_integration () =
  (* constraints surface as style violations in set evaluation *)
  let ontology =
    Ontology.Build.(
      create ~id:"o" ~name:"O"
      |> add_event_type ~id:"e" ~name:"e" ~template:"event")
  in
  let set =
    Scenarioml.Scen.make_set ~id:"s" ~name:"S" ontology
      [
        Scenarioml.Scen.scenario ~id:"one" ~name:"One"
          [ Scenarioml.Event.typed ~id:"x" ~event_type:"e" [] ];
      ]
  in
  let mapping =
    Mapping.Build.(create ~id:"m" ~ontology ~architecture:with_backdoor
    |> map ~event_type:"e" ~to_:[ "c1" ])
  in
  let config =
    Walkthrough.Engine.(
      default_config |> with_constraints (Constraint_lang.parse "route c1 -> c2 via srv"))
  in
  let r =
    Walkthrough.Engine.evaluate_set ~config ~set ~architecture:with_backdoor ~mapping ()
  in
  Alcotest.(check (list string)) "violation surfaced" [ "constraint.route" ]
    (rules r.Walkthrough.Engine.style_violations);
  Alcotest.(check bool) "set inconsistent" false r.Walkthrough.Engine.consistent

let test_as_rule () =
  let rule = Constraint_lang.as_rule [ Constraint_lang.Forbid { src = "c1"; dst = "c2" } ] in
  Alcotest.(check bool) "usable as style rule" true
    (Rule.check_all [ rule ] arch <> [])

let suite =
  [
    Alcotest.test_case "parsing" `Quick test_parse;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "connect" `Quick test_connect;
    Alcotest.test_case "forbid" `Quick test_forbid;
    Alcotest.test_case "route via (the paper's server example)" `Quick test_route_via;
    Alcotest.test_case "mediate" `Quick test_mediate;
    Alcotest.test_case "acyclic" `Quick test_acyclic;
    Alcotest.test_case "unknown elements" `Quick test_unknown_elements;
    Alcotest.test_case "engine integration" `Quick test_engine_integration;
    Alcotest.test_case "as a style rule" `Quick test_as_rule;
  ]
