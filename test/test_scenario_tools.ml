(* Tests for scenario ranking, scenario relationships, and prose I/O. *)

open Scenarioml

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"O"
  |> add_event_type ~id:"a" ~name:"a" ~template:"event a"
  |> add_event_type ~id:"b" ~name:"b" ~template:"event b"
  |> add_event_type ~id:"c" ~name:"c" ~template:"event c"
  |> add_event_type ~id:"a-special" ~name:"a special" ~super:"a" ~template:"special a"

let typed id event_type = Event.typed ~id ~event_type []

let scenario ?kind id events = Scen.scenario ?kind ~id ~name:id events

let set_of scenarios = Scen.make_set ~id:"s" ~name:"S" ontology scenarios

(* ------------------------------ rank ------------------------------ *)

let test_rank_greedy_coverage () =
  let wide = scenario "wide" [ typed "w1" "a"; typed "w2" "b"; typed "w3" "c" ] in
  let narrow = scenario "narrow" [ typed "n1" "a" ] in
  let other = scenario "other" [ typed "o1" "b" ] in
  let ranking = Rank.rank (set_of [ narrow; other; wide ]) in
  (match ranking with
  | first :: _ ->
      Alcotest.(check string) "widest first" "wide" first.Rank.scenario;
      Alcotest.(check int) "marginal 3" 3 first.Rank.marginal_event_types
  | [] -> Alcotest.fail "empty ranking");
  (* later scenarios add nothing new *)
  let last = List.nth ranking 2 in
  Alcotest.(check int) "no marginal coverage left" 0 last.Rank.marginal_event_types

let test_rank_negative_bonus () =
  let pos = scenario "pos" [ typed "p1" "a" ] in
  let neg = scenario ~kind:Scen.Negative "neg" [ typed "n1" "a" ] in
  match Rank.rank (set_of [ pos; neg ]) with
  | first :: _ -> Alcotest.(check string) "negative breaks the tie" "neg" first.Rank.scenario
  | [] -> Alcotest.fail "empty ranking"

let test_cover () =
  let set = set_of [ scenario "x" [ typed "x1" "a" ]; scenario "y" [ typed "y1" "b" ] ] in
  Alcotest.(check int) "cover size" 1 (List.length (Rank.cover set 1));
  Alcotest.(check int) "cover all" 2 (List.length (Rank.cover set 10))

let test_rank_pims () =
  let ranking = Rank.rank Casestudies.Pims.scenario_set in
  Alcotest.(check int) "all 22 ranked" 22 (List.length ranking);
  (* scores are non-increasing in marginal coverage order *)
  let rec nonincreasing = function
    | a :: (b :: _ as rest) ->
        a.Rank.marginal_event_types >= b.Rank.marginal_event_types && nonincreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "greedy marginal order" true (nonincreasing ranking)

(* rank invariants on random scenario sets *)

let gen_random_set =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    flatten_l
      (List.init n (fun i ->
           let* events = list_size (int_range 0 4) (oneofl [ "a"; "b"; "c" ]) in
           let* negative = bool in
           return (i, events, negative))))

let build_random_set specs =
  set_of
    (List.map
       (fun (i, events, negative) ->
         Scen.scenario
           ~kind:(if negative then Scen.Negative else Scen.Positive)
           ~id:(Printf.sprintf "s%d" i)
           ~name:(Printf.sprintf "s%d" i)
           (List.mapi
              (fun j et -> typed (Printf.sprintf "s%d-e%d" i j) et)
              events))
       specs)

let prop_rank_is_permutation =
  QCheck2.Test.make ~name:"ranking is a permutation of the scenario ids" ~count:100
    gen_random_set (fun specs ->
      let set = build_random_set specs in
      let ranked =
        List.sort String.compare (List.map (fun r -> r.Rank.scenario) (Rank.rank set))
      in
      let ids =
        List.sort String.compare
          (List.map (fun s -> s.Scen.scenario_id) set.Scen.scenarios)
      in
      ranked = ids)

let prop_specializes_reflexive =
  QCheck2.Test.make ~name:"specialization is reflexive on traceful scenarios" ~count:50
    gen_random_set (fun specs ->
      let set = build_random_set specs in
      List.for_all
        (fun s -> Relate.specializes set ~sub:s ~super:s)
        set.Scen.scenarios)

(* ------------------------------ relate ---------------------------- *)

let test_specializes () =
  let general = scenario "general" [ typed "g1" "a"; typed "g2" "b" ] in
  let special = scenario "special" [ typed "s1" "a-special"; typed "s2" "b" ] in
  let unrelated = scenario "unrelated" [ typed "u1" "c" ] in
  let set = set_of [ general; special; unrelated ] in
  Alcotest.(check bool) "specializes" true
    (Relate.specializes set ~sub:special ~super:general);
  Alcotest.(check bool) "not the other way" false
    (Relate.specializes set ~sub:general ~super:special);
  Alcotest.(check bool) "unrelated" false
    (Relate.specializes set ~sub:unrelated ~super:general)

let test_specializes_with_alternation () =
  (* every branch of the sub must match some trace of the super *)
  let general =
    scenario "general"
      [
        Event.Alternation
          { id = "ga"; branches = [ [ typed "g1" "a" ]; [ typed "g2" "b" ] ] };
      ]
  in
  let special = scenario "special" [ typed "s1" "a-special" ] in
  let set = set_of [ general; special ] in
  Alcotest.(check bool) "matches one branch" true
    (Relate.specializes set ~sub:special ~super:general)

let test_shared_and_episodes () =
  let base = scenario "base" [ typed "b1" "a" ] in
  let user =
    scenario "user" [ typed "u1" "b"; Event.Episode { id = "ep"; scenario = "base" } ]
  in
  Alcotest.(check (list string)) "shared" [ "a" ]
    (Relate.shared_event_types base (scenario "z" [ typed "z1" "a"; typed "z2" "c" ]));
  let relations = Relate.analyze (set_of [ base; user ]) in
  Alcotest.(check bool) "episode relation" true
    (List.exists
       (function
         | Relate.Uses_episode { scenario = "user"; episode = "base" } -> true
         | _ -> false)
       relations)

let test_analyze_reports_each_pair_once () =
  let x = scenario "x" [ typed "x1" "a" ] in
  let y = scenario "y" [ typed "y1" "a" ] in
  let shares =
    List.filter
      (function Relate.Shares _ -> true | _ -> false)
      (Relate.analyze (set_of [ x; y ]))
  in
  Alcotest.(check int) "one sharing entry" 1 (List.length shares)

(* ------------------------------ prose ----------------------------- *)

let paper_prose =
  {|Scenario: Create portfolio
(1) User initiates the "create portfolio" functionality.
(2) System asks the user for the portfolio name.
(3) User enters the portfolio name.
(4) An empty portfolio is created.|}

let test_of_prose () =
  let s = Text_io.of_prose paper_prose in
  Alcotest.(check string) "name" "Create portfolio" s.Scen.scenario_name;
  Alcotest.(check string) "slug id" "create-portfolio" s.Scen.scenario_id;
  Alcotest.(check int) "four events" 4 (List.length s.Scen.events);
  match s.Scen.events with
  | Event.Simple { text; _ } :: _ ->
      Alcotest.(check string) "first event text"
        "User initiates the \"create portfolio\" functionality." text
  | _ -> Alcotest.fail "expected simple events"

let test_of_prose_formats () =
  let s =
    Text_io.of_prose
      "Negative scenario: Bad access\n1. An outsider connects.\n2) The outsider reads\n   confidential data.\n(2.a.1) The outsider is logged."
  in
  Alcotest.(check bool) "negative" true (Scen.is_negative s);
  Alcotest.(check int) "three events (continuation merged)" 3 (List.length s.Scen.events);
  (match List.nth s.Scen.events 1 with
  | Event.Simple { text; _ } ->
      Alcotest.(check string) "continuation merged"
        "The outsider reads confidential data." text
  | _ -> Alcotest.fail "expected simple");
  Alcotest.(check bool) "no events is an error" true
    (match Text_io.of_prose "just some text\nwithout numbering" with
    | exception Text_io.Prose_error _ -> true
    | _ -> false)

let test_to_prose_roundtrip_text () =
  let set = Casestudies.Pims.scenario_set in
  let prose =
    Text_io.to_prose Casestudies.Pims.ontology set Casestudies.Pims.create_portfolio
  in
  Testutil.check_contains "header" prose "Scenario: Create portfolio";
  Testutil.check_contains "numbered" prose "(1) The user initiates";
  (* prose parses back with the same number of events *)
  let back = Text_io.of_prose prose in
  Alcotest.(check int) "same event count as the first trace" 4
    (List.length back.Scen.events)

(* ------------------------------ suggest --------------------------- *)

let pims_suggest text = Suggest.for_text Casestudies.Pims.ontology text

let test_suggest_ranking () =
  match pims_suggest "The user enters the portfolio name" with
  | best :: _ ->
      Alcotest.(check string) "best match" "user-enters" best.Suggest.event_type;
      Alcotest.(check bool) "high score" true (best.Suggest.score >= 0.5);
      Alcotest.(check (list (pair string string))) "binding extracted"
        [ ("item", "the portfolio name") ]
        best.Suggest.bindings
  | [] -> Alcotest.fail "no suggestions"

let test_suggest_no_match () =
  Alcotest.(check (list string)) "nothing matches gibberish" []
    (List.map
       (fun s -> s.Suggest.event_type)
       (pims_suggest "zzz qqq completely unrelated vvv"))

let test_type_event () =
  let ontology = Casestudies.Pims.ontology in
  let simple = Event.simple ~id:"x" "The system asks the user for the new name." in
  (match Suggest.type_event ontology simple with
  | Event.Typed { event_type; args; _ } ->
      Alcotest.(check string) "typed" "system-prompts" event_type;
      Alcotest.(check int) "one arg" 1 (List.length args)
  | _ -> Alcotest.fail "expected the event to be typed");
  (* a text the ontology cannot place stays simple *)
  let odd = Event.simple ~id:"y" "Paint dries on the wall" in
  Alcotest.(check bool) "left unchanged" true (Suggest.type_event ontology odd = odd)

let test_type_prose_scenario_end_to_end () =
  (* prose -> simple events -> typed events -> static walkthrough *)
  let prose =
    "Scenario: Prompt and enter\n\
     (1) The system asks the user for the portfolio name.\n\
     (2) The user enters the portfolio name.\n"
  in
  let ontology = Casestudies.Pims.ontology in
  let typed = Suggest.type_scenario ontology (Text_io.of_prose prose) in
  let typed_count =
    List.length
      (List.filter
         (function Event.Typed _ -> true | _ -> false)
         typed.Scen.events)
  in
  Alcotest.(check int) "both events typed" 2 typed_count;
  let set = Scen.make_set ~id:"p" ~name:"P" ontology [ typed ] in
  Alcotest.(check (list string)) "validates" []
    (List.map Validate.problem_to_string (Validate.check set));
  let r =
    Walkthrough.Engine.evaluate_scenario ~set
      ~architecture:Casestudies.Pims.architecture ~mapping:Casestudies.Pims.mapping typed
  in
  Alcotest.(check bool) "walks" true (Walkthrough.Verdict.is_consistent r)

let suite =
  [
    Alcotest.test_case "rank: greedy coverage" `Quick test_rank_greedy_coverage;
    Alcotest.test_case "rank: negative bonus" `Quick test_rank_negative_bonus;
    Alcotest.test_case "rank: cover" `Quick test_cover;
    Alcotest.test_case "rank: PIMS" `Quick test_rank_pims;
    Alcotest.test_case "relate: specialization" `Quick test_specializes;
    Alcotest.test_case "relate: specialization with alternation" `Quick
      test_specializes_with_alternation;
    Alcotest.test_case "relate: sharing and episodes" `Quick test_shared_and_episodes;
    Alcotest.test_case "relate: pairs reported once" `Quick
      test_analyze_reports_each_pair_once;
    Alcotest.test_case "prose: parse the paper's format" `Quick test_of_prose;
    Alcotest.test_case "prose: formats, negatives, continuations" `Quick
      test_of_prose_formats;
    Alcotest.test_case "prose: render and reparse" `Quick test_to_prose_roundtrip_text;
    Alcotest.test_case "suggest: ranking and binding" `Quick test_suggest_ranking;
    Alcotest.test_case "suggest: no match" `Quick test_suggest_no_match;
    Alcotest.test_case "suggest: typing an event" `Quick test_type_event;
    Alcotest.test_case "suggest: prose to walkthrough end to end" `Quick
      test_type_prose_scenario_end_to_end;
    QCheck_alcotest.to_alcotest prop_rank_is_permutation;
    QCheck_alcotest.to_alcotest prop_specializes_reflexive;
  ]
