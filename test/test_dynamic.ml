(* Tests for the behavioral (statechart-driven) walkthrough. *)

open Scenarioml

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"O"
  |> add_event_type ~id:"req" ~name:"request" ~template:"A request arrives"
  |> add_event_type ~id:"ack" ~name:"acknowledge" ~template:"The request is acknowledged"
  |> add_event_type ~id:"close" ~name:"close" ~template:"The case is closed"
  |> add_event_type ~id:"req-urgent" ~name:"urgent request" ~super:"req"
       ~template:"An urgent request arrives"

let architecture =
  let open Adl.Build in
  create ~id:"a" ~name:"A" ()
  |> add_component ~id:"srv" ~name:"Server" ~responsibilities:[ "serve" ]
  |> add_component ~id:"log" ~name:"Log" ~responsibilities:[ "log" ]
  |> fun t -> biconnect t "srv" "log"

let mapping =
  let open Mapping.Build in
  create ~id:"m" ~ontology ~architecture
  |> map ~event_type:"req" ~to_:[ "srv" ]
  |> map ~event_type:"ack" ~to_:[ "srv"; "log" ]
  |> map ~event_type:"close" ~to_:[ "srv" ]

(* protocol: a request must precede its ack; close only after ack *)
let srv_chart =
  let open Statechart.Types in
  chart ~id:"srv-b" ~component:"srv" ~initial:"idle"
    [ state "idle"; state "pending"; state "acked" ]
    [
      transition ~source:"idle" ~target:"pending" ~trigger:"req" ();
      transition ~source:"pending" ~target:"acked" ~trigger:"ack" ~outputs:[ "logged" ] ();
      transition ~source:"acked" ~target:"idle" ~trigger:"close" ();
    ]

let charts = [ srv_chart ]

let typed id event_type = Event.typed ~id ~event_type []

let scenario ?kind id events = Scen.scenario ?kind ~id ~name:id events

let eval ?config s =
  let set = Scen.make_set ~id:"s" ~name:"S" ontology [ s ] in
  Walkthrough.Dynamic.evaluate_scenario ?config ~set ~mapping ~charts s

let test_accepting_run () =
  let r =
    eval (scenario "good" [ typed "e1" "req"; typed "e2" "ack"; typed "e3" "close" ])
  in
  Alcotest.(check bool) "accepted" true r.Walkthrough.Dynamic.ok;
  match r.Walkthrough.Dynamic.traces with
  | [ t ] ->
      Alcotest.(check bool) "trace accepted" true t.Walkthrough.Dynamic.accepted;
      (* outputs recorded on the ack step *)
      let step2 = List.nth t.Walkthrough.Dynamic.steps 1 in
      Alcotest.(check (list (pair string (list string)))) "reaction outputs"
        [ ("srv", [ "logged" ]) ]
        step2.Walkthrough.Dynamic.reactions;
      (* final configuration returned to idle *)
      Alcotest.(check bool) "final config" true
        (List.assoc_opt "srv" t.Walkthrough.Dynamic.final_configs = Some [ "idle" ])
  | _ -> Alcotest.fail "expected one trace"

let test_order_violation_rejected () =
  let r = eval (scenario "bad" [ typed "e1" "ack"; typed "e2" "req" ]) in
  Alcotest.(check bool) "rejected" false r.Walkthrough.Dynamic.ok;
  match r.Walkthrough.Dynamic.traces with
  | [ t ] -> (
      let mismatches = List.concat_map (fun s -> s.Walkthrough.Dynamic.mismatches) t.Walkthrough.Dynamic.steps in
      match mismatches with
      | [ m ] ->
          Alcotest.(check int) "at step 1" 1 m.Walkthrough.Dynamic.step;
          Alcotest.(check string) "component" "srv" m.Walkthrough.Dynamic.component;
          Alcotest.(check string) "trigger" "ack" m.Walkthrough.Dynamic.trigger
      | _ -> Alcotest.fail "expected exactly one mismatch")
  | _ -> Alcotest.fail "expected one trace"

let test_chartless_components_vacuous () =
  (* "log" has no chart; ack maps to [srv; log] and still works *)
  let r = eval (scenario "s" [ typed "e1" "req"; typed "e2" "ack" ]) in
  Alcotest.(check bool) "vacuous accept" true r.Walkthrough.Dynamic.ok

let test_supertype_trigger_placement () =
  (* req-urgent is unmapped: placed via its super req -> srv; its
     trigger is its own id, which srv's chart does not know: rejected *)
  let r = eval (scenario "u" [ typed "e1" "req-urgent" ]) in
  Alcotest.(check bool) "unknown trigger rejected" false r.Walkthrough.Dynamic.ok;
  (* a trigger_of that generalizes to the mapped ancestor accepts *)
  let generalize event =
    match event with
    | Event.Typed { event_type; _ } ->
        let rec up id =
          if Mapping.Types.components_of mapping id <> [] then Some id
          else
            match Ontology.Types.find_event_type ontology id with
            | Some { Ontology.Types.event_super = Some super; _ } -> up super
            | Some { Ontology.Types.event_super = None; _ } | None -> Some id
        in
        up event_type
    | _ -> None
  in
  let config = { Walkthrough.Dynamic.default_config with Walkthrough.Dynamic.trigger_of = generalize } in
  let r2 = eval ~config (scenario "u2" [ typed "e1" "req-urgent" ]) in
  Alcotest.(check bool) "generalized trigger accepted" true r2.Walkthrough.Dynamic.ok

let test_negative_scenario_semantics () =
  (* a negative scenario is OK when the behavior rejects it *)
  let r = eval (scenario ~kind:Scen.Negative "neg" [ typed "e1" "close" ]) in
  Alcotest.(check bool) "rejected run makes negative ok" true r.Walkthrough.Dynamic.ok;
  let r2 = eval (scenario ~kind:Scen.Negative "neg2" [ typed "e1" "req" ]) in
  Alcotest.(check bool) "accepted run flags negative" false r2.Walkthrough.Dynamic.ok

let test_alternation_traces () =
  let s =
    scenario "alt"
      [
        typed "e0" "req";
        Event.Alternation
          { id = "a"; branches = [ [ typed "b1" "ack" ]; [ typed "b2" "close" ] ] };
      ]
  in
  let r = eval s in
  (* branch 1 (req;ack) accepted, branch 2 (req;close) rejected *)
  Alcotest.(check int) "two traces" 2 (List.length r.Walkthrough.Dynamic.traces);
  Alcotest.(check bool) "overall rejected" false r.Walkthrough.Dynamic.ok;
  Alcotest.(check (list bool)) "per-trace" [ true; false ]
    (List.map (fun t -> t.Walkthrough.Dynamic.accepted) r.Walkthrough.Dynamic.traces)

(* ---- the PIMS behavioral demonstration ---- *)

let pims_eval s =
  Walkthrough.Dynamic.evaluate_scenario ~set:Casestudies.Pims.scenario_set
    ~mapping:Casestudies.Pims.mapping ~charts:Casestudies.Pims_behavior.charts s

let test_pims_download_then_save () =
  let r = pims_eval Casestudies.Pims.get_share_prices in
  Alcotest.(check bool) "the paper's scenario is accepted" true r.Walkthrough.Dynamic.ok

let test_pims_save_before_download () =
  (* statically consistent... *)
  let reordered = Casestudies.Pims_behavior.reordered_get_share_prices in
  let set =
    Scenarioml.Scen.make_set ~id:"x" ~name:"X" Casestudies.Pims.ontology [ reordered ]
  in
  let static =
    Walkthrough.Engine.evaluate_scenario ~set
      ~architecture:Casestudies.Pims.architecture ~mapping:Casestudies.Pims.mapping
      reordered
  in
  Alcotest.(check bool) "static walkthrough passes" true
    (Walkthrough.Verdict.is_consistent static);
  (* ...but behaviorally rejected at the premature save *)
  let dynamic =
    Walkthrough.Dynamic.evaluate_scenario ~set ~mapping:Casestudies.Pims.mapping
      ~charts:Casestudies.Pims_behavior.charts reordered
  in
  Alcotest.(check bool) "behavioral walkthrough rejects" false dynamic.Walkthrough.Dynamic.ok;
  let mismatch =
    List.concat_map
      (fun t -> List.concat_map (fun s -> s.Walkthrough.Dynamic.mismatches) t.Walkthrough.Dynamic.steps)
      dynamic.Walkthrough.Dynamic.traces
  in
  match mismatch with
  | [ m ] ->
      Alcotest.(check string) "the loader rejects" "loader" m.Walkthrough.Dynamic.component;
      Alcotest.(check string) "on the save" "system-saves" m.Walkthrough.Dynamic.trigger
  | _ -> Alcotest.fail "expected exactly one mismatch"

let test_render () =
  let r = eval (scenario "bad" [ typed "e1" "ack" ]) in
  let text = Format.asprintf "%a" Walkthrough.Dynamic.pp_result r in
  Testutil.check_contains "verdict" text "REJECTED";
  Testutil.check_contains "mismatch" text "rejects trigger"

let suite =
  [
    Alcotest.test_case "accepting run with outputs" `Quick test_accepting_run;
    Alcotest.test_case "order violation rejected" `Quick test_order_violation_rejected;
    Alcotest.test_case "chartless components vacuous" `Quick
      test_chartless_components_vacuous;
    Alcotest.test_case "supertype placement and trigger generalization" `Quick
      test_supertype_trigger_placement;
    Alcotest.test_case "negative scenario semantics" `Quick test_negative_scenario_semantics;
    Alcotest.test_case "alternation traces" `Quick test_alternation_traces;
    Alcotest.test_case "PIMS: paper scenario accepted" `Quick test_pims_download_then_save;
    Alcotest.test_case "PIMS: save-before-download caught only behaviorally" `Quick
      test_pims_save_before_download;
    Alcotest.test_case "result rendering" `Quick test_render;
  ]
