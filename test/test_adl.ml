(* Unit and property tests for the architecture description library. *)

let linear_arch =
  (* a -> b -> c via direct bidirectional links, d isolated-by-design *)
  let open Adl.Build in
  create ~style:"layered" ~id:"t" ~name:"Test arch" ()
  |> add_component ~id:"a" ~name:"A" ~responsibilities:[ "start" ] ~tags:[ ("layer", "3") ]
  |> add_component ~id:"b" ~name:"B" ~responsibilities:[ "middle" ] ~tags:[ ("layer", "2") ]
  |> add_component ~id:"c" ~name:"C" ~responsibilities:[ "end" ] ~tags:[ ("layer", "1") ]
  |> fun t ->
  biconnect t "a" "b" |> fun t -> biconnect t "b" "c"

let connected_arch =
  let open Adl.Build in
  create ~id:"t2" ~name:"With connector" ()
  |> add_component ~id:"a" ~name:"A" ~responsibilities:[ "r" ]
  |> add_component ~id:"b" ~name:"B" ~responsibilities:[ "r" ]
  |> add_component ~id:"c" ~name:"C" ~responsibilities:[ "r" ]
  |> add_connector ~id:"bus" ~name:"Bus"
  |> fun t ->
  biconnect t "a" "bus" |> fun t ->
  biconnect t "bus" "b" |> fun t -> biconnect t "b" "c"

let test_lookups () =
  Alcotest.(check bool) "component" true (Adl.Structure.find_component linear_arch "a" <> None);
  Alcotest.(check bool) "connector" true
    (Adl.Structure.find_connector connected_arch "bus" <> None);
  Alcotest.(check (list string)) "brick ids" [ "a"; "b"; "c" ]
    (Adl.Structure.brick_ids linear_arch);
  Alcotest.(check int) "size" 5 (Adl.Structure.size linear_arch);
  let a = Adl.Structure.component_exn linear_arch "a" in
  Alcotest.(check (option int)) "layer" (Some 3) (Adl.Structure.layer_of a)

let test_duplicates_rejected () =
  Alcotest.check_raises "dup component" (Adl.Build.Duplicate "a") (fun () ->
      ignore (Adl.Build.add_component ~id:"a" ~name:"A2" linear_arch));
  Alcotest.check_raises "unknown link endpoint" (Adl.Build.Unknown "ghost.i") (fun () ->
      ignore (Adl.Build.add_link ~from_:("ghost", "i") ~to_:("a", "io_b") linear_arch))

let test_connect_via () =
  let open Adl.Build in
  let t =
    create ~id:"v" ~name:"V" ()
    |> add_component ~id:"x" ~name:"X"
    |> add_component ~id:"y" ~name:"Y"
    |> add_connector ~id:"pipe" ~name:"Pipe"
  in
  let t = connect ~via:"pipe" t "x" "y" in
  let g = Adl.Graph.of_structure t in
  Alcotest.(check bool) "x reaches y via pipe" true (Adl.Graph.reachable g "x" "y");
  Alcotest.(check bool) "not backwards" false (Adl.Graph.reachable g "y" "x");
  (match Adl.Graph.path g "x" "y" with
  | Some p -> Alcotest.(check (list string)) "path" [ "x"; "pipe"; "y" ] p
  | None -> Alcotest.fail "no path");
  let t2 = connect t "y" "x" in
  let g2 = Adl.Graph.of_structure t2 in
  Alcotest.(check bool) "now backwards too" true (Adl.Graph.adjacent g2 "y" "x")

let test_graph_policies () =
  let g = Adl.Graph.of_structure connected_arch in
  Alcotest.(check bool) "direct through connector" true
    (Adl.Graph.reachable ~policy:Adl.Graph.Direct g "a" "b");
  (* a -> c requires relaying through component b *)
  Alcotest.(check bool) "routed through component" true
    (Adl.Graph.reachable ~policy:Adl.Graph.Routed g "a" "c");
  Alcotest.(check bool) "direct blocked by component" false
    (Adl.Graph.reachable ~policy:Adl.Graph.Direct g "a" "c");
  Alcotest.(check bool) "self" true (Adl.Graph.reachable ~policy:Adl.Graph.Direct g "a" "a");
  Alcotest.(check bool) "is_connector" true (Adl.Graph.is_connector g "bus");
  Alcotest.(check int) "edges" 6 (Adl.Graph.edge_count g)

let test_graph_components () =
  let island =
    Adl.Build.add_component ~id:"lone" ~name:"Lone" connected_arch
  in
  let g = Adl.Graph.of_structure island in
  let components = Adl.Graph.undirected_components g in
  Alcotest.(check int) "two islands" 2 (List.length components);
  let indeg, outdeg = Adl.Graph.degree g "bus" in
  Alcotest.(check (pair int int)) "bus degree" (2, 2) (indeg, outdeg)

let test_validate_clean () =
  Alcotest.(check (list string)) "no problems" []
    (List.map Adl.Validate.problem_to_string (Adl.Validate.check linear_arch))

let test_validate_problems () =
  let has arch predicate = List.exists predicate (Adl.Validate.check arch) in
  let no_resp =
    Adl.Build.(
      create ~id:"w" ~name:"W" ()
      |> add_component ~id:"a" ~name:"A"
      |> add_component ~id:"b" ~name:"B")
  in
  Alcotest.(check bool) "missing responsibilities" true
    (has no_resp (function Adl.Validate.Missing_responsibilities _ -> true | _ -> false));
  Alcotest.(check bool) "isolated" true
    (has no_resp (function Adl.Validate.Isolated_element _ -> true | _ -> false));
  Alcotest.(check bool) "relaxed check skips responsibilities" false
    (List.exists
       (function Adl.Validate.Missing_responsibilities _ -> true | _ -> false)
       (Adl.Validate.check ~require_responsibilities:false no_resp));
  let self_link =
    let open Adl.Build in
    create ~id:"w" ~name:"W" ()
    |> add_component ~id:"a" ~name:"A" ~responsibilities:[ "r" ]
    |> fun t -> biconnect t "a" "a"
  in
  Alcotest.(check bool) "self link" true
    (has self_link (function Adl.Validate.Self_link _ -> true | _ -> false));
  let incompatible =
    let open Adl.Build in
    create ~id:"w" ~name:"W" ()
    |> add_component ~id:"a" ~name:"A" ~responsibilities:[ "r" ]
         ~interfaces:[ interface ~direction:Adl.Structure.Provided "p" ]
    |> add_component ~id:"b" ~name:"B" ~responsibilities:[ "r" ]
         ~interfaces:[ interface ~direction:Adl.Structure.Provided "p" ]
    |> add_link ~from_:("a", "p") ~to_:("b", "p")
  in
  Alcotest.(check bool) "incompatible directions" true
    (has incompatible (function Adl.Validate.Incompatible_link _ -> true | _ -> false));
  (* dangling anchors are only constructible by hand *)
  let dangling =
    {
      linear_arch with
      Adl.Structure.links =
        [
          {
            Adl.Structure.link_id = "bad";
            link_from = { Adl.Structure.anchor = "ghost"; interface = "i" };
            link_to = { Adl.Structure.anchor = "a"; interface = "io_b" };
          };
        ];
    }
  in
  Alcotest.(check bool) "unknown anchor" true
    (has dangling (function Adl.Validate.Unknown_anchor _ -> true | _ -> false));
  let bad_iface =
    {
      linear_arch with
      Adl.Structure.links =
        [
          {
            Adl.Structure.link_id = "bad";
            link_from = { Adl.Structure.anchor = "a"; interface = "ghost" };
            link_to = { Adl.Structure.anchor = "b"; interface = "io_a" };
          };
        ];
    }
  in
  Alcotest.(check bool) "unknown interface" true
    (has bad_iface (function Adl.Validate.Unknown_interface _ -> true | _ -> false))

let test_substructure_validation () =
  let inner =
    Adl.Build.(create ~id:"inner" ~name:"Inner" () |> add_component ~id:"x" ~name:"X")
  in
  let outer =
    Adl.Build.(
      create ~id:"outer" ~name:"Outer" ()
      |> add_component ~id:"c" ~name:"C" ~responsibilities:[ "r" ] ~substructure:inner)
  in
  Alcotest.(check bool) "nested problem surfaced" true
    (List.exists
       (function Adl.Validate.Substructure_problem _ -> true | _ -> false)
       (Adl.Validate.check outer))

let test_diff_ops () =
  let removed = Adl.Diff.apply linear_arch (Adl.Diff.Remove_component "b") in
  Alcotest.(check bool) "component gone" true
    (Adl.Structure.find_component removed "b" = None);
  Alcotest.(check int) "links pruned" 0 (List.length removed.Adl.Structure.links);
  let renamed =
    Adl.Diff.apply linear_arch (Adl.Diff.Rename_element { old_id = "b"; new_id = "mid" })
  in
  Alcotest.(check bool) "renamed" true (Adl.Structure.find_component renamed "mid" <> None);
  let g = Adl.Graph.of_structure renamed in
  Alcotest.(check bool) "links follow rename" true (Adl.Graph.reachable g "a" "mid");
  Alcotest.(check bool) "errors on unknown" true
    (match Adl.Diff.apply linear_arch (Adl.Diff.Remove_component "ghost") with
    | exception Adl.Diff.Apply_error _ -> true
    | _ -> false)

let test_excise () =
  let excised = Adl.Diff.excise_link_between linear_arch "a" "b" in
  let g = Adl.Graph.of_structure excised in
  Alcotest.(check bool) "a cut from b" false (Adl.Graph.reachable g "a" "b");
  Alcotest.(check bool) "b still reaches c" true (Adl.Graph.reachable g "b" "c");
  Alcotest.(check bool) "no such link" true
    (match Adl.Diff.excise_link_between linear_arch "a" "c" with
    | exception Adl.Diff.Apply_error _ -> true
    | _ -> false)

let test_diff_roundtrip () =
  let target =
    let open Adl.Build in
    create ~style:"layered" ~id:"t" ~name:"Test arch" ()
    |> add_component ~id:"a" ~name:"A" ~responsibilities:[ "start" ]
         ~tags:[ ("layer", "3") ]
    |> add_component ~id:"c" ~name:"C" ~responsibilities:[ "end" ] ~tags:[ ("layer", "1") ]
    |> add_component ~id:"d" ~name:"D" ~responsibilities:[ "new" ]
    |> fun t -> biconnect t "a" "c"
  in
  let script = Adl.Diff.diff linear_arch target in
  let applied = Adl.Diff.apply_all linear_arch script in
  let ids t = List.sort String.compare (Adl.Structure.brick_ids t) in
  let link_ids t =
    List.sort String.compare (List.map (fun l -> l.Adl.Structure.link_id) t.Adl.Structure.links)
  in
  Alcotest.(check (list string)) "same elements" (ids target) (ids applied);
  Alcotest.(check (list string)) "same links" (link_ids target) (link_ids applied)

let test_xml_roundtrip () =
  let sub = Adl.Build.(create ~id:"s" ~name:"Sub" () |> add_component ~id:"inner" ~name:"I") in
  let arch =
    let open Adl.Build in
    create ~style:"c2" ~id:"x" ~name:"Xml arch" ()
    |> add_component ~id:"a" ~name:"A" ~description:"the A"
         ~responsibilities:[ "r1"; "r2" ]
         ~interfaces:
           [
             interface ~direction:Adl.Structure.Provided ~tags:[ ("side", "top") ] "i1";
             interface ~direction:Adl.Structure.Required "i2";
             interface ~direction:Adl.Structure.In_out "i3";
           ]
         ~tags:[ ("layer", "1"); ("external", "false") ]
    |> add_component ~id:"b" ~name:"B" ~substructure:sub
    |> add_connector ~id:"k" ~name:"K" ~description:"conn"
         ~interfaces:[ interface ~direction:Adl.Structure.In_out "i" ]
    |> add_link ~id:"l1" ~from_:("a", "i2") ~to_:("k", "i")
  in
  let xml = Adl.Xml_io.to_string arch in
  let reparsed = Adl.Xml_io.of_string xml in
  Alcotest.(check bool) "identical" true (reparsed = arch)

let test_xml_malformed () =
  let bad s =
    match Adl.Xml_io.of_string s with
    | exception Adl.Xml_io.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "wrong root" true (bad "<x id=\"a\" name=\"b\"/>");
  Alcotest.(check bool) "bad direction" true
    (bad
       "<archStructure id=\"a\" name=\"b\"><component id=\"c\" name=\"C\"><interface \
        id=\"i\" name=\"i\" direction=\"sideways\"/></component></archStructure>")

let test_pretty () =
  let text = Adl.Pretty.to_string linear_arch in
  Testutil.check_contains "component line" text "component a: A";
  Testutil.check_contains "link line" text "a.io_b -> b.io_a";
  let layered = Format.asprintf "%a" Adl.Pretty.pp_layered linear_arch in
  Testutil.check_contains "top layer first" layered "A";
  Testutil.check_contains "summary" (Adl.Pretty.summary linear_arch) "3 components"

let test_dot_export () =
  let dot = Adl.Dot.to_dot ~highlight:[ "a"; "b" ] linear_arch in
  Testutil.check_contains "digraph" dot "digraph \"t\"";
  Testutil.check_contains "component box" dot "\"a\" [shape=box";
  Testutil.check_contains "layer label" dot "(layer 3)";
  Testutil.check_contains "highlight" dot "color=red";
  Testutil.check_contains "edge" dot "\"a\" -> \"b\"";
  let with_conn = Adl.Dot.to_dot connected_arch in
  Testutil.check_contains "connector ellipse" with_conn "\"bus\" [shape=ellipse";
  (* unhighlighted graphs have no red *)
  Alcotest.(check bool) "no spurious highlight" false
    (Testutil.contains (Adl.Dot.to_dot linear_arch) "color=red")

(* --- property: a random chain architecture is fully reachable from
   its head, and excising any link cuts exactly the tail --- *)

let prop_chain_reachability =
  QCheck2.Test.make ~name:"chain reachability and excision" ~count:50
    QCheck2.Gen.(int_range 2 12)
    (fun n ->
      let name i = Printf.sprintf "n%d" i in
      let arch =
        List.fold_left
          (fun t i ->
            Adl.Build.add_component ~id:(name i) ~name:(name i)
              ~responsibilities:[ "r" ] t)
          (Adl.Build.create ~id:"chain" ~name:"Chain" ())
          (List.init n (fun i -> i))
      in
      let arch =
        List.fold_left
          (fun t i -> Adl.Build.biconnect t (name i) (name (i + 1)))
          arch
          (List.init (n - 1) (fun i -> i))
      in
      let g = Adl.Graph.of_structure arch in
      let all_reachable =
        List.for_all (fun i -> Adl.Graph.reachable g (name 0) (name i)) (List.init n Fun.id)
      in
      let cut = n / 2 in
      if cut >= n - 1 then all_reachable
      else
        let excised = Adl.Diff.excise_link_between arch (name cut) (name (cut + 1)) in
        let g2 = Adl.Graph.of_structure excised in
        all_reachable
        && (not (Adl.Graph.reachable g2 (name 0) (name (n - 1))))
        && Adl.Graph.reachable g2 (name 0) (name cut))

let suite =
  [
    Alcotest.test_case "lookups" `Quick test_lookups;
    Alcotest.test_case "duplicates and unknowns rejected" `Quick test_duplicates_rejected;
    Alcotest.test_case "connect via connector" `Quick test_connect_via;
    Alcotest.test_case "graph path policies" `Quick test_graph_policies;
    Alcotest.test_case "undirected components and degrees" `Quick test_graph_components;
    Alcotest.test_case "valid architecture is clean" `Quick test_validate_clean;
    Alcotest.test_case "each validation problem detected" `Quick test_validate_problems;
    Alcotest.test_case "substructure validation" `Quick test_substructure_validation;
    Alcotest.test_case "diff operations" `Quick test_diff_ops;
    Alcotest.test_case "link excision (Fig. 4 operation)" `Quick test_excise;
    Alcotest.test_case "diff/apply round trip" `Quick test_diff_roundtrip;
    Alcotest.test_case "XML round trip" `Quick test_xml_roundtrip;
    Alcotest.test_case "malformed XML rejected" `Quick test_xml_malformed;
    Alcotest.test_case "pretty printing" `Quick test_pretty;
    Alcotest.test_case "Graphviz DOT export" `Quick test_dot_export;
    QCheck_alcotest.to_alcotest prop_chain_reachability;
  ]
