let () =
  Alcotest.run "sosae"
    [
      ("xmlight", Test_xmlight.suite);
      ("ontology", Test_ontology.suite);
      ("scenarioml", Test_scenarioml.suite);
      ("scenario-tools", Test_scenario_tools.suite);
      ("instances", Test_instances.suite);
      ("adl", Test_adl.suite);
      ("statechart", Test_statechart.suite);
      ("styles", Test_styles.suite);
      ("constraints", Test_constraints.suite);
      ("mapping", Test_mapping.suite);
      ("mapping-infer", Test_infer.suite);
      ("walkthrough", Test_walkthrough.suite);
      ("dynamic", Test_dynamic.suite);
      ("dsim", Test_dsim.suite);
      ("campaign", Test_campaign.suite);
      ("golden-traces", Test_golden.suite);
      ("semweb", Test_semweb.suite);
      ("acme", Test_acme.suite);
      ("casestudies", Test_casestudies.suite);
      ("integration", Test_integration.suite);
      ("session", Test_session.suite);
      ("graph-props", Test_graph_props.suite);
      ("properties", Test_props.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("evolution", Test_evolution.suite);
      ("store", Test_store.suite);
      ("simtest", Test_simtest.suite);
      ("server", Test_server.suite);
      ("cli", Test_cli.suite);
    ]
