(* Shared helpers for the test suites. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let check_contains what haystack needle =
  if not (contains haystack needle) then
    Alcotest.failf "%s: expected to find %S in:\n%s" what needle haystack
