(* Tests for entity-based mapping inference (paper 8). *)

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"O"
  |> add_class ~id:"actor" ~name:"Actor"
  |> add_class ~id:"user" ~name:"User" ~super:"actor"
  |> add_class ~id:"record" ~name:"Record"
  |> add_class ~id:"invoice" ~name:"Invoice" ~super:"record"
  |> add_class ~id:"payment" ~name:"Payment" ~super:"record"
  |> add_event_type ~id:"touch" ~name:"touch" ~actor:"user"
       ~params:[ ("what", "record") ]
       ~template:"touch {what}"
  |> add_event_type ~id:"bill" ~name:"bill" ~actor:"user"
       ~params:[ ("what", "invoice") ]
       ~template:"bill {what}"
  |> add_event_type ~id:"pay" ~name:"pay" ~super:"bill"
       ~params:[ ("with", "payment") ]
       ~template:"pay {what} with {with}"
  |> add_event_type ~id:"idle" ~name:"idle" ~template:"nothing happens"

let architecture =
  let open Adl.Build in
  create ~id:"a" ~name:"A" ()
  |> add_component ~id:"ui" ~name:"UI" ~responsibilities:[ "r" ]
  |> add_component ~id:"billing" ~name:"Billing" ~responsibilities:[ "r" ]
  |> add_component ~id:"ledger" ~name:"Ledger" ~responsibilities:[ "r" ]
  |> add_connector ~id:"bus" ~name:"Bus"
  |> fun t ->
  biconnect t "ui" "bus" |> fun t ->
  biconnect t "billing" "bus" |> fun t -> biconnect t "ledger" "bus"

let associations =
  [
    { Mapping.Infer.entity = "user"; responsible = [ "ui" ] };
    { Mapping.Infer.entity = "invoice"; responsible = [ "billing" ] };
    { Mapping.Infer.entity = "payment"; responsible = [ "ledger" ] };
    { Mapping.Infer.entity = "record"; responsible = [ "ledger" ] };
  ]

let inferred = Mapping.Infer.infer ~id:"inf" ~ontology ~architecture associations

let test_actor_and_params () =
  (* touch: actor user -> ui; param record -> ledger (record assoc) *)
  Alcotest.(check (list string)) "touch" [ "ui"; "ledger" ]
    (Mapping.Types.components_of inferred "touch");
  (* bill: actor user -> ui; param invoice: invoice assoc + record assoc
     does NOT cover invoice (association on the subclass side only when
     the association entity subsumes the class) -- record subsumes
     invoice, so both billing and ledger apply *)
  Alcotest.(check (list string)) "bill" [ "ui"; "billing"; "ledger" ]
    (Mapping.Types.components_of inferred "bill")

let test_inherited_params () =
  (* pay inherits {what: invoice} from bill and adds {with: payment} *)
  Alcotest.(check (list string)) "pay" [ "ui"; "billing"; "ledger" ]
    (Mapping.Types.components_of inferred "pay")

let test_uncovered_event_type () =
  Alcotest.(check (list string)) "idle has no entry" []
    (Mapping.Types.components_of inferred "idle");
  Alcotest.(check bool) "no empty entries" true
    (List.for_all (fun e -> e.Mapping.Types.components <> []) inferred.Mapping.Types.entries)

let test_compare_mappings () =
  let manual =
    Mapping.Build.(
      create ~id:"man" ~ontology ~architecture
      |> map ~event_type:"touch" ~to_:[ "ui"; "ledger" ]
      |> map ~event_type:"bill" ~to_:[ "billing" ]
      |> map ~event_type:"idle" ~to_:[ "ui" ])
  in
  let divergences = Mapping.Infer.compare_mappings manual inferred in
  (* touch agrees; bill diverges (manual lacks ui+ledger); idle and pay
     exist on one side only *)
  Alcotest.(check bool) "touch agrees" true
    (not
       (List.exists
          (fun d -> String.equal d.Mapping.Infer.event_type "touch")
          divergences));
  let bill = List.find (fun d -> String.equal d.Mapping.Infer.event_type "bill") divergences in
  Alcotest.(check (list string)) "bill manual-only" [] bill.Mapping.Infer.only_manual;
  Alcotest.(check (list string)) "bill inferred-only" [ "ui"; "ledger" ]
    bill.Mapping.Infer.only_inferred;
  let idle = List.find (fun d -> String.equal d.Mapping.Infer.event_type "idle") divergences in
  Alcotest.(check (list string)) "idle manual-only" [ "ui" ] idle.Mapping.Infer.only_manual

let test_inferred_mapping_evaluates () =
  (* the derived mapping drives a walkthrough just like a manual one *)
  let scenario =
    Scenarioml.Scen.scenario ~id:"s" ~name:"S"
      [
        Scenarioml.Event.typed ~id:"e1" ~event_type:"touch"
          [ Scenarioml.Event.literal ~param:"what" "a record" ];
        Scenarioml.Event.typed ~id:"e2" ~event_type:"bill"
          [ Scenarioml.Event.literal ~param:"what" "an invoice" ];
      ]
  in
  let set = Scenarioml.Scen.make_set ~id:"x" ~name:"X" ontology [ scenario ] in
  let r =
    Walkthrough.Engine.evaluate_scenario ~set ~architecture ~mapping:inferred scenario
  in
  Alcotest.(check bool) "walks" true (Walkthrough.Verdict.is_consistent r)

let test_pims_inference_sanity () =
  (* infer a PIMS mapping from coarse entity associations and check it
     covers at least as many event types as it claims *)
  let associations =
    [
      { Mapping.Infer.entity = "user"; responsible = [ "master-controller" ] };
      { Mapping.Infer.entity = "system"; responsible = [ "master-controller" ] };
      { Mapping.Infer.entity = "portfolio"; responsible = [ "portfolio-manager" ] };
      { Mapping.Infer.entity = "transaction"; responsible = [ "transaction-manager" ] };
      { Mapping.Infer.entity = "share-price"; responsible = [ "loader" ] };
      { Mapping.Infer.entity = "password"; responsible = [ "authentication" ] };
      {
        Mapping.Infer.entity = "repository-data";
        responsible = [ "data-access"; "data-repository" ];
      };
      { Mapping.Infer.entity = "website"; responsible = [ "remote-price-db" ] };
    ]
  in
  let inferred =
    Mapping.Infer.infer ~id:"pims-inferred" ~ontology:Casestudies.Pims.ontology
      ~architecture:Casestudies.Pims.architecture associations
  in
  (* every event type with an actor gets at least the UI component *)
  Alcotest.(check bool) "nonempty" true (inferred.Mapping.Types.entries <> []);
  Alcotest.(check bool) "user events at the UI" true
    (List.exists (String.equal "master-controller")
       (Mapping.Types.components_of inferred "user-enters"));
  (* downloads mention the web site *)
  Alcotest.(check bool) "downloads reach the remote db" true
    (List.exists (String.equal "remote-price-db")
       (Mapping.Types.components_of inferred "system-downloads"));
  let divergences =
    Mapping.Infer.compare_mappings Casestudies.Pims.mapping inferred
  in
  Alcotest.(check bool) "divergence report non-trivial" true (divergences <> [])

let suite =
  [
    Alcotest.test_case "actor and parameter classes" `Quick test_actor_and_params;
    Alcotest.test_case "inherited parameters" `Quick test_inherited_params;
    Alcotest.test_case "uncovered event types get no entry" `Quick
      test_uncovered_event_type;
    Alcotest.test_case "mapping comparison" `Quick test_compare_mappings;
    Alcotest.test_case "inferred mapping drives the walkthrough" `Quick
      test_inferred_mapping_evaluates;
    Alcotest.test_case "PIMS inference sanity" `Quick test_pims_inference_sanity;
  ]
