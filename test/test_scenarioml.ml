(* Unit and property tests for ScenarioML events, scenarios,
   validation, linearization, and statistics. *)

open Scenarioml

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"Test domain"
  |> add_class ~id:"actor" ~name:"Actor"
  |> add_class ~id:"user" ~name:"User" ~super:"actor"
  |> add_class ~id:"doc" ~name:"Document"
  |> add_individual ~id:"alice" ~name:"Alice" ~cls:"user"
  |> add_individual ~id:"report" ~name:"the report" ~cls:"doc"
  |> add_event_type ~id:"opens" ~name:"opens"
       ~params:[ ("what", "doc") ]
       ~template:"The user opens {what}"
  |> add_event_type ~id:"saves" ~name:"saves"
       ~params:[ ("what", "doc") ]
       ~template:"The user saves {what}"
  |> add_event_type ~id:"closes" ~name:"closes" ~template:"The user closes the editor"

let typed id event_type args = Event.typed ~id ~event_type args

let open_report id = typed id "opens" [ Event.individual ~param:"what" "report" ]

let save_report id = typed id "saves" [ Event.literal ~param:"what" "the report" ]

let simple_scenario =
  Scen.scenario ~id:"edit" ~name:"Edit the report" ~actors:[ "alice" ]
    [ open_report "e1"; save_report "e2"; typed "e3" "closes" [] ]

let set_of scenarios = Scen.make_set ~id:"s" ~name:"Set" ontology scenarios

(* ------------------------- events --------------------------------- *)

let test_event_accessors () =
  let e =
    Event.Compound
      {
        id = "c";
        pattern = Event.Sequence;
        body = [ open_report "a"; Event.Optional { id = "o"; body = [ save_report "b" ] } ];
      }
  in
  Alcotest.(check string) "id" "c" (Event.id e);
  Alcotest.(check (list string)) "all ids" [ "c"; "a"; "o"; "b" ] (Event.all_ids e);
  Alcotest.(check int) "size" 4 (Event.size e);
  Alcotest.(check int) "depth" 3 (Event.depth e);
  Alcotest.(check (list string)) "typed refs" [ "opens"; "saves" ]
    (Event.typed_event_types e)

let test_render () =
  Alcotest.(check string) "individual resolved" "The user opens the report"
    (Event.render ontology (open_report "x"));
  Alcotest.(check string) "literal" "The user saves the report"
    (Event.render ontology (save_report "x"));
  Alcotest.(check string) "unknown type" "<unresolved event type ghost>"
    (Event.render ontology (typed "x" "ghost" []));
  let alternation =
    Event.Alternation { id = "a"; branches = [ [ open_report "1" ]; [ save_report "2" ] ] }
  in
  Testutil.check_contains "alternation rendering"
    (Event.render ontology alternation) "either";
  let iteration =
    Event.Iteration { id = "i"; bound = Event.Exactly 3; body = [ open_report "1" ] }
  in
  Testutil.check_contains "iteration rendering" (Event.render ontology iteration) "3 times"

let test_scenario_accessors () =
  Alcotest.(check int) "event count" 3 (Scen.event_count simple_scenario);
  Alcotest.(check (list string)) "typed" [ "opens"; "saves"; "closes" ]
    (Scen.typed_event_types simple_scenario);
  Alcotest.(check bool) "positive" false (Scen.is_negative simple_scenario);
  let set = set_of [ simple_scenario ] in
  Alcotest.(check bool) "find" true (Scen.find set "edit" <> None);
  Alcotest.(check bool) "find missing" true (Scen.find set "nope" = None)

let test_fresh_individuals () =
  (* an individual newly created during the scenario (paper 2) *)
  let e =
    Event.typed ~id:"e" ~event_type:"opens"
      [ Event.fresh ~param:"what" ~label:"a new draft" ~cls:"doc" ]
  in
  Alcotest.(check string) "rendered with its label" "The user opens a new draft"
    (Event.render ontology e);
  let ok = Scen.scenario ~id:"s" ~name:"S" [ e ] in
  Alcotest.(check (list string)) "validates" []
    (List.map Validate.problem_to_string (Validate.check (set_of [ ok ])));
  (* wrong class for the parameter *)
  let bad =
    Scen.scenario ~id:"s" ~name:"S"
      [
        Event.typed ~id:"e" ~event_type:"opens"
          [ Event.fresh ~param:"what" ~label:"someone" ~cls:"user" ];
      ]
  in
  Alcotest.(check bool) "class mismatch detected" true
    (List.exists
       (function Validate.Arg_class_mismatch _ -> true | _ -> false)
       (Validate.check (set_of [ bad ])));
  (* unknown class *)
  let ghost =
    Scen.scenario ~id:"s" ~name:"S"
      [
        Event.typed ~id:"e" ~event_type:"opens"
          [ Event.fresh ~param:"what" ~label:"x" ~cls:"ghost" ];
      ]
  in
  Alcotest.(check bool) "unknown class detected" true
    (List.exists
       (function Validate.Unknown_individual _ -> true | _ -> false)
       (Validate.check (set_of [ ghost ])));
  (* XML round trip *)
  let set = set_of [ ok ] in
  Alcotest.(check bool) "xml round trip" true
    (Xml_io.set_of_string (Xml_io.set_to_string set) = set)

(* ------------------------- validation ----------------------------- *)

let problems scenarios = Validate.check (set_of scenarios)

let test_validation_clean () =
  Alcotest.(check (list string)) "no problems" []
    (List.map Validate.problem_to_string (problems [ simple_scenario ]))

let first_problem_matches name scenarios predicate =
  match List.filter predicate (problems scenarios) with
  | _ :: _ -> ()
  | [] -> Alcotest.failf "%s: expected problem not reported" name

let test_validation_problems () =
  first_problem_matches "unknown event type"
    [ Scen.scenario ~id:"s1" ~name:"S" [ typed "e" "ghost" [] ] ]
    (function Validate.Unknown_event_type _ -> true | _ -> false);
  first_problem_matches "unknown param"
    [
      Scen.scenario ~id:"s1" ~name:"S"
        [ typed "e" "closes" [ Event.literal ~param:"ghost" "v" ] ];
    ]
    (function Validate.Unknown_param _ -> true | _ -> false);
  first_problem_matches "missing arg"
    [ Scen.scenario ~id:"s1" ~name:"S" [ typed "e" "opens" [] ] ]
    (function Validate.Missing_arg _ -> true | _ -> false);
  first_problem_matches "unknown individual"
    [
      Scen.scenario ~id:"s1" ~name:"S"
        [ typed "e" "opens" [ Event.individual ~param:"what" "ghost" ] ];
    ]
    (function Validate.Unknown_individual _ -> true | _ -> false);
  first_problem_matches "class mismatch"
    [
      Scen.scenario ~id:"s1" ~name:"S"
        [ typed "e" "opens" [ Event.individual ~param:"what" "alice" ] ];
    ]
    (function Validate.Arg_class_mismatch _ -> true | _ -> false);
  first_problem_matches "unknown actor"
    [ Scen.scenario ~id:"s1" ~name:"S" ~actors:[ "ghost" ] [ typed "e" "closes" [] ] ]
    (function Validate.Unknown_actor _ -> true | _ -> false);
  first_problem_matches "unknown episode"
    [
      Scen.scenario ~id:"s1" ~name:"S" [ Event.Episode { id = "e"; scenario = "ghost" } ];
    ]
    (function Validate.Unknown_episode _ -> true | _ -> false);
  first_problem_matches "duplicate event ids"
    [ Scen.scenario ~id:"s1" ~name:"S" [ typed "e" "closes" []; typed "e" "closes" [] ] ]
    (function Validate.Duplicate_event_id _ -> true | _ -> false);
  first_problem_matches "duplicate scenarios"
    [ simple_scenario; simple_scenario ]
    (function Validate.Duplicate_scenario_id _ -> true | _ -> false);
  first_problem_matches "bad iteration count"
    [
      Scen.scenario ~id:"s1" ~name:"S"
        [ Event.Iteration { id = "i"; bound = Event.Exactly (-2); body = [] } ];
    ]
    (function Validate.Bad_iteration_count _ -> true | _ -> false);
  first_problem_matches "empty alternation"
    [ Scen.scenario ~id:"s1" ~name:"S" [ Event.Alternation { id = "a"; branches = [] } ] ]
    (function Validate.Empty_alternation _ -> true | _ -> false)

let test_episode_cycle () =
  let a =
    Scen.scenario ~id:"a" ~name:"A" [ Event.Episode { id = "ea"; scenario = "b" } ]
  in
  let b =
    Scen.scenario ~id:"b" ~name:"B" [ Event.Episode { id = "eb"; scenario = "a" } ]
  in
  first_problem_matches "cycle" [ a; b ] (function
    | Validate.Episode_cycle _ -> true
    | _ -> false)

let test_subtype_args_validate () =
  (* a typed event may supply args declared by an inherited parameter *)
  let ontology =
    Ontology.Build.add_event_type ~id:"opens-archived" ~name:"opens archived"
      ~super:"opens" ~template:"Opens archived {what}" ontology
  in
  let scenario =
    Scen.scenario ~id:"s" ~name:"S"
      [ typed "e" "opens-archived" [ Event.individual ~param:"what" "report" ] ]
  in
  let set = Scen.make_set ~id:"x" ~name:"X" ontology [ scenario ] in
  Alcotest.(check (list string)) "inherited param accepted" []
    (List.map Validate.problem_to_string (Validate.check set))

(* ------------------------- linearization -------------------------- *)

let trace_texts set s =
  let { Linearize.traces; _ } = Linearize.scenario set s in
  List.map (fun t -> Linearize.render_trace ontology t) traces

let test_linearize_plain () =
  let set = set_of [ simple_scenario ] in
  let traces = trace_texts set simple_scenario in
  Alcotest.(check int) "one trace" 1 (List.length traces);
  Alcotest.(check int) "three steps" 3 (List.length (List.hd traces))

let test_linearize_alternation () =
  let s =
    Scen.scenario ~id:"s" ~name:"S"
      [
        open_report "e0";
        Event.Alternation
          {
            id = "a";
            branches = [ [ save_report "b1" ]; [ typed "b2" "closes" [] ]; [] ];
          };
      ]
  in
  let { Linearize.traces; truncated } = Linearize.scenario (set_of [ s ]) s in
  Alcotest.(check int) "three traces" 3 (List.length traces);
  Alcotest.(check bool) "not truncated" false truncated

let test_linearize_optional_iteration () =
  let s =
    Scen.scenario ~id:"s" ~name:"S"
      [
        Event.Optional { id = "o"; body = [ open_report "e1" ] };
        Event.Iteration { id = "i"; bound = Event.Zero_or_more; body = [ save_report "e2" ] };
      ]
  in
  (* optional: 2 choices; zero-or-more with unroll 1: counts 0 and 1. *)
  let { Linearize.traces; _ } = Linearize.scenario (set_of [ s ]) s in
  Alcotest.(check int) "2 * 2 traces" 4 (List.length traces);
  let s2 =
    Scen.scenario ~id:"s2" ~name:"S2"
      [ Event.Iteration { id = "i"; bound = Event.Exactly 3; body = [ save_report "e2" ] } ]
  in
  let { Linearize.traces; _ } = Linearize.scenario (set_of [ s2 ]) s2 in
  Alcotest.(check int) "one trace" 1 (List.length traces);
  Alcotest.(check int) "3 steps" 3 (List.length (List.hd traces))

let test_linearize_any_order () =
  let s =
    Scen.scenario ~id:"s" ~name:"S"
      [
        Event.Compound
          {
            id = "c";
            pattern = Event.Any_order;
            body = [ open_report "e1"; save_report "e2"; typed "e3" "closes" [] ];
          };
      ]
  in
  let { Linearize.traces; _ } = Linearize.scenario (set_of [ s ]) s in
  Alcotest.(check int) "3! permutations" 6 (List.length traces)

let test_linearize_episode () =
  let inner = Scen.scenario ~id:"inner" ~name:"Inner" [ save_report "i1" ] in
  let outer =
    Scen.scenario ~id:"outer" ~name:"Outer"
      [ open_report "o1"; Event.Episode { id = "ep"; scenario = "inner" } ]
  in
  let set = set_of [ inner; outer ] in
  let { Linearize.traces; _ } = Linearize.scenario set outer in
  (match traces with
  | [ steps ] ->
      Alcotest.(check int) "expanded" 2 (List.length steps);
      Alcotest.(check (list string)) "step provenance" [ "outer"; "inner" ]
        (List.map (fun st -> st.Linearize.step_scenario) steps)
  | _ -> Alcotest.fail "expected one trace");
  (* self-referential episodes are cut, not looped *)
  let cyclic =
    Scen.scenario ~id:"cyc" ~name:"Cyc"
      [ open_report "c1"; Event.Episode { id = "ep"; scenario = "cyc" } ]
  in
  let set = set_of [ cyclic ] in
  let { Linearize.traces; _ } = Linearize.scenario set cyclic in
  Alcotest.(check int) "cycle cut" 1 (List.length (List.hd traces))

let test_linearize_truncation () =
  let branches = List.init 4 (fun i -> [ typed (Printf.sprintf "b%d" i) "closes" [] ]) in
  let s =
    Scen.scenario ~id:"s" ~name:"S"
      [
        Event.Alternation { id = "a1"; branches };
        Event.Alternation
          {
            id = "a2";
            branches =
              List.map
                (List.map (function
                  | Event.Typed t -> Event.Typed { t with id = t.id ^ "x" }
                  | e -> e))
                branches;
          };
      ]
  in
  let config = { Linearize.iteration_unroll = 1; max_traces = 5 } in
  let { Linearize.traces; truncated } = Linearize.scenario ~config (set_of [ s ]) s in
  Alcotest.(check bool) "truncated" true truncated;
  Alcotest.(check bool) "capped" true (List.length traces <= 5)

let test_first_trace () =
  let set = set_of [ simple_scenario ] in
  Alcotest.(check int) "first trace steps" 3
    (List.length (Linearize.first_trace set simple_scenario))

(* ------------------------- stats ---------------------------------- *)

let test_stats () =
  let s2 =
    Scen.scenario ~id:"again" ~name:"Again" ~kind:Scen.Negative
      [ open_report "x1"; open_report "x2" ]
  in
  let set = set_of [ simple_scenario; s2 ] in
  let stats = Stats.of_set set in
  Alcotest.(check int) "scenarios" 2 stats.Stats.scenario_count;
  Alcotest.(check int) "negatives" 1 stats.Stats.negative_count;
  Alcotest.(check int) "typed" 5 stats.Stats.typed_occurrences;
  Alcotest.(check int) "distinct" 3 stats.Stats.distinct_event_types_used;
  (match stats.Stats.usage with
  | ("opens", 3) :: _ -> ()
  | other ->
      Alcotest.failf "unexpected usage head: %s"
        (String.concat ","
           (List.map (fun (e, n) -> Printf.sprintf "%s=%d" e n) other)));
  Alcotest.(check (float 0.01)) "reuse" (5.0 /. 3.0) stats.Stats.reuse_factor;
  Alcotest.(check (list string)) "unused" [] (Stats.unused_event_types set);
  let set_small = set_of [ s2 ] in
  Alcotest.(check (list string)) "unused saves/closes" [ "saves"; "closes" ]
    (Stats.unused_event_types set_small)

(* ------------------------- XML ------------------------------------ *)

let test_xml_roundtrip () =
  let complex =
    Scen.scenario ~id:"cx" ~name:"Complex" ~description:"all constructs"
      ~kind:Scen.Negative ~actors:[ "alice" ]
      [
        Event.simple ~id:"s1" "a simple event";
        open_report "t1";
        Event.Compound
          { id = "c1"; pattern = Event.Any_order; body = [ save_report "t2" ] };
        Event.Alternation
          { id = "a1"; branches = [ [ typed "t3" "closes" [] ]; [ save_report "t4" ] ] };
        Event.Iteration { id = "i1"; bound = Event.One_or_more; body = [ open_report "t5" ] };
        Event.Iteration { id = "i2"; bound = Event.Exactly 2; body = [ save_report "t6" ] };
        Event.Optional { id = "o1"; body = [ typed "t7" "closes" [] ] };
        Event.Episode { id = "ep1"; scenario = "edit" };
      ]
  in
  let set = set_of [ simple_scenario; complex ] in
  let xml = Xml_io.set_to_string set in
  let reparsed = Xml_io.set_of_string xml in
  Alcotest.(check bool) "identical" true (reparsed = set)

let test_xml_malformed () =
  let bad s =
    match Xml_io.set_of_string s with
    | exception Xml_io.Malformed _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "wrong root" true (bad "<nope id=\"a\" name=\"b\"/>");
  Alcotest.(check bool) "missing ontology" true
    (bad "<scenarioSet id=\"a\" name=\"b\"/>")

let test_pretty () =
  let text = Pretty.scenario_to_string ontology simple_scenario in
  Testutil.check_contains "scenario header" text "Edit the report";
  Testutil.check_contains "rendered event" text "The user opens the report";
  let set_text = Pretty.set_to_string (set_of [ simple_scenario ]) in
  Testutil.check_contains "ontology included" set_text "Ontology o"

(* --- property: alternation-only scenarios have a trace per branch
   product; all traces are distinct --- *)

let gen_branch_sizes = QCheck2.Gen.(list_size (int_range 1 4) (int_range 1 3))

let prop_alternation_product =
  QCheck2.Test.make ~name:"alternation traces = product of branch counts" ~count:100
    gen_branch_sizes (fun sizes ->
      let counter = ref 0 in
      let events =
        List.map
          (fun branches ->
            Event.Alternation
              {
                id =
                  (incr counter;
                   Printf.sprintf "alt%d" !counter);
                branches =
                  List.init branches (fun _ ->
                      incr counter;
                      [ typed (Printf.sprintf "e%d" !counter) "closes" [] ]);
              })
          sizes
      in
      let s = Scen.scenario ~id:"p" ~name:"P" events in
      let config = { Linearize.iteration_unroll = 1; max_traces = 100000 } in
      let { Linearize.traces; truncated } = Linearize.scenario ~config (set_of [ s ]) s in
      let expected = List.fold_left ( * ) 1 sizes in
      (not truncated) && List.length traces = expected)

let suite =
  [
    Alcotest.test_case "event accessors" `Quick test_event_accessors;
    Alcotest.test_case "event rendering" `Quick test_render;
    Alcotest.test_case "scenario accessors" `Quick test_scenario_accessors;
    Alcotest.test_case "fresh (newly created) individuals" `Quick test_fresh_individuals;
    Alcotest.test_case "valid set is clean" `Quick test_validation_clean;
    Alcotest.test_case "each validation problem detected" `Quick test_validation_problems;
    Alcotest.test_case "episode cycles detected" `Quick test_episode_cycle;
    Alcotest.test_case "inherited parameters validate" `Quick test_subtype_args_validate;
    Alcotest.test_case "linearize: plain sequence" `Quick test_linearize_plain;
    Alcotest.test_case "linearize: alternation" `Quick test_linearize_alternation;
    Alcotest.test_case "linearize: optional and iteration" `Quick
      test_linearize_optional_iteration;
    Alcotest.test_case "linearize: any-order permutations" `Quick test_linearize_any_order;
    Alcotest.test_case "linearize: episodes expand, cycles cut" `Quick
      test_linearize_episode;
    Alcotest.test_case "linearize: truncation cap" `Quick test_linearize_truncation;
    Alcotest.test_case "first trace" `Quick test_first_trace;
    Alcotest.test_case "statistics and reuse factor" `Quick test_stats;
    Alcotest.test_case "XML round trip (all constructs)" `Quick test_xml_roundtrip;
    Alcotest.test_case "malformed XML rejected" `Quick test_xml_malformed;
    Alcotest.test_case "pretty printing" `Quick test_pretty;
    QCheck_alcotest.to_alcotest prop_alternation_product;
  ]
