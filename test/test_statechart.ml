(* Unit and property tests for statecharts and their step semantics. *)

open Statechart

let flat_chart =
  Types.chart ~id:"door" ~component:"door" ~initial:"closed"
    [ Types.state "closed"; Types.state "open"; Types.state "locked" ]
    [
      Types.transition ~source:"closed" ~target:"open" ~trigger:"open" ~outputs:[ "creak" ] ();
      Types.transition ~source:"open" ~target:"closed" ~trigger:"close" ();
      Types.transition ~source:"closed" ~target:"locked" ~trigger:"lock"
        ~guard:"hasKey" ();
      Types.transition ~source:"locked" ~target:"closed" ~trigger:"unlock" ~guard:"hasKey" ();
    ]

let hier_chart =
  Types.chart ~id:"player" ~component:"player" ~initial:"off"
    [
      Types.state "off";
      Types.state ~substates:[ Types.state "playing"; Types.state "paused" ]
        ~initial:"playing" "on";
    ]
    [
      Types.transition ~source:"off" ~target:"on" ~trigger:"power" ();
      Types.transition ~source:"on" ~target:"off" ~trigger:"power" ();
      Types.transition ~source:"playing" ~target:"paused" ~trigger:"pause" ();
      Types.transition ~source:"paused" ~target:"playing" ~trigger:"pause" ();
      (* inner transition shadows the outer one on the same trigger *)
      Types.transition ~source:"paused" ~target:"off" ~trigger:"power" ();
    ]

let test_tree_accessors () =
  Alcotest.(check (list string)) "all states" [ "off"; "on"; "playing"; "paused" ]
    (Types.state_ids hier_chart);
  Alcotest.(check (option string)) "parent" (Some "on") (Types.parent_of hier_chart "playing");
  Alcotest.(check (option string)) "top parent" None (Types.parent_of hier_chart "on");
  Alcotest.(check (option string)) "unknown" None (Types.parent_of hier_chart "ghost");
  Alcotest.(check (list string)) "ancestors" [ "on" ] (Types.ancestors hier_chart "paused")

let test_flat_stepping () =
  let c0 = Exec.initial_config flat_chart in
  Alcotest.(check (list string)) "initial" [ "closed" ] c0;
  let r = Exec.step flat_chart c0 "open" in
  Alcotest.(check (list string)) "opened" [ "open" ] r.Exec.new_config;
  Alcotest.(check (list string)) "outputs" [ "creak" ] r.Exec.outputs;
  Alcotest.(check bool) "fired" true (r.Exec.fired <> None);
  let r2 = Exec.step flat_chart r.Exec.new_config "open" in
  Alcotest.(check bool) "dropped event" true (r2.Exec.fired = None);
  Alcotest.(check (list string)) "unchanged" [ "open" ] r2.Exec.new_config

let test_guards () =
  let c0 = Exec.initial_config flat_chart in
  let no_key = Exec.step ~guards:(fun _ -> false) flat_chart c0 "lock" in
  Alcotest.(check bool) "guard blocks" true (no_key.Exec.fired = None);
  let with_key = Exec.step ~guards:(String.equal "hasKey") flat_chart c0 "lock" in
  Alcotest.(check (list string)) "guard admits" [ "locked" ] with_key.Exec.new_config

let test_hierarchy () =
  let c0 = Exec.initial_config hier_chart in
  Alcotest.(check (list string)) "initial leaf" [ "off" ] c0;
  let on = Exec.step hier_chart c0 "power" in
  Alcotest.(check (list string)) "enters initial substate" [ "on"; "playing" ]
    on.Exec.new_config;
  Alcotest.(check bool) "active parent" true (Exec.active on.Exec.new_config "on");
  Alcotest.(check string) "leaf" "playing" (Exec.leaf on.Exec.new_config);
  let paused = Exec.step hier_chart on.Exec.new_config "pause" in
  Alcotest.(check (list string)) "paused" [ "on"; "paused" ] paused.Exec.new_config;
  (* the inner paused->off transition wins over on->off *)
  let off = Exec.step hier_chart paused.Exec.new_config "power" in
  (match off.Exec.fired with
  | Some tr -> Alcotest.(check string) "inner wins" "paused--power->off" tr.Types.tr_id
  | None -> Alcotest.fail "no transition fired");
  (* outer transition fires when only the parent matches *)
  let off2 = Exec.step hier_chart on.Exec.new_config "power" in
  (match off2.Exec.fired with
  | Some tr -> Alcotest.(check string) "outer" "on--power->off" tr.Types.tr_id
  | None -> Alcotest.fail "no transition fired")

let test_run () =
  let final, steps = Exec.run flat_chart [ "open"; "close"; "open"; "bogus" ] in
  Alcotest.(check (list string)) "final" [ "open" ] final;
  Alcotest.(check int) "steps" 4 (List.length steps);
  let fired = List.filter (fun s -> s.Exec.reaction.Exec.fired <> None) steps in
  Alcotest.(check int) "fired count" 3 (List.length fired)

let test_reachable_states () =
  Alcotest.(check (list string)) "all reachable" [ "closed"; "open"; "locked" ]
    (Exec.reachable_states flat_chart);
  let with_dead =
    Types.chart ~id:"d" ~component:"d" ~initial:"a"
      [ Types.state "a"; Types.state "b"; Types.state "dead" ]
      [ Types.transition ~source:"a" ~target:"b" ~trigger:"go" () ]
  in
  Alcotest.(check (list string)) "dead excluded" [ "a"; "b" ]
    (Exec.reachable_states with_dead)

let test_validate_clean () =
  Alcotest.(check (list string)) "flat" []
    (List.map Validate.problem_to_string (Validate.check flat_chart));
  Alcotest.(check (list string)) "hier" []
    (List.map Validate.problem_to_string (Validate.check hier_chart))

let test_validate_problems () =
  let has chart predicate = List.exists predicate (Validate.check chart) in
  let bad_initial =
    Types.chart ~id:"c" ~component:"c" ~initial:"ghost" [ Types.state "a" ] []
  in
  Alcotest.(check bool) "unknown initial" true
    (has bad_initial (function Validate.Unknown_initial _ -> true | _ -> false));
  let no_sub_initial =
    Types.chart ~id:"c" ~component:"c" ~initial:"p"
      [ Types.state ~substates:[ Types.state "q" ] "p" ]
      []
  in
  Alcotest.(check bool) "composite without initial" true
    (has no_sub_initial (function
      | Validate.Composite_without_initial _ -> true
      | _ -> false));
  let wrong_sub_initial =
    Types.chart ~id:"c" ~component:"c" ~initial:"p"
      [ Types.state ~substates:[ Types.state "q" ] ~initial:"ghost" "p" ]
      []
  in
  Alcotest.(check bool) "initial not substate" true
    (has wrong_sub_initial (function
      | Validate.Initial_not_substate _ -> true
      | _ -> false));
  let bad_endpoints =
    Types.chart ~id:"c" ~component:"c" ~initial:"a" [ Types.state "a" ]
      [ Types.transition ~source:"ghost" ~target:"gone" ~trigger:"t" () ]
  in
  Alcotest.(check bool) "unknown source" true
    (has bad_endpoints (function Validate.Unknown_source _ -> true | _ -> false));
  Alcotest.(check bool) "unknown target" true
    (has bad_endpoints (function Validate.Unknown_target _ -> true | _ -> false));
  let nondeterministic =
    Types.chart ~id:"c" ~component:"c" ~initial:"a"
      [ Types.state "a"; Types.state "b" ]
      [
        Types.transition ~id:"t1" ~source:"a" ~target:"b" ~trigger:"go" ();
        Types.transition ~id:"t2" ~source:"a" ~target:"a" ~trigger:"go" ();
      ]
  in
  Alcotest.(check bool) "nondeterministic" true
    (has nondeterministic (function Validate.Nondeterministic _ -> true | _ -> false));
  let unreachable =
    Types.chart ~id:"c" ~component:"c" ~initial:"a"
      [ Types.state "a"; Types.state "island" ]
      [ Types.transition ~source:"island" ~target:"a" ~trigger:"t" () ]
  in
  Alcotest.(check bool) "unreachable" true
    (has unreachable (function Validate.Unreachable_state _ -> true | _ -> false))

let test_xml_roundtrip () =
  let xml = Xml_io.to_string hier_chart in
  let reparsed = Xml_io.of_string xml in
  Alcotest.(check bool) "identical" true (reparsed = hier_chart);
  let xml2 = Xml_io.to_string flat_chart in
  Alcotest.(check bool) "flat identical" true (Xml_io.of_string xml2 = flat_chart)

let test_xml_malformed () =
  Alcotest.(check bool) "wrong root" true
    (match Xml_io.of_string "<nope id=\"a\"/>" with
    | exception Xml_io.Malformed _ -> true
    | _ -> false)

let test_entry_outputs () =
  let chart =
    Types.chart ~id:"lamp" ~component:"lamp" ~initial:"off"
      [
        Types.state "off";
        Types.state ~entry:[ "glow" ]
          ~substates:[ Types.state ~entry:[ "warm" ] "low"; Types.state "high" ]
          ~initial:"low" "on";
      ]
      [
        Types.transition ~source:"off" ~target:"on" ~trigger:"switch"
          ~outputs:[ "click" ] ();
        Types.transition ~source:"low" ~target:"high" ~trigger:"brighter" ();
        Types.transition ~source:"on" ~target:"off" ~trigger:"switch" ();
      ]
  in
  let c0 = Exec.initial_config chart in
  let r = Exec.step chart c0 "switch" in
  (* transition outputs first, then entered states outermost-in *)
  Alcotest.(check (list string)) "entry outputs appended" [ "click"; "glow"; "warm" ]
    r.Exec.outputs;
  (* moving within "on" does not re-enter it *)
  let r2 = Exec.step chart r.Exec.new_config "brighter" in
  Alcotest.(check (list string)) "no re-entry outputs" [] r2.Exec.outputs

let test_history_machine () =
  let chart =
    Types.chart ~id:"player" ~component:"p" ~initial:"off"
      [
        Types.state "off";
        Types.state ~history:true
          ~substates:[ Types.state "playing"; Types.state "paused" ]
          ~initial:"playing" "on";
      ]
      [
        Types.transition ~source:"off" ~target:"on" ~trigger:"power" ();
        Types.transition ~source:"on" ~target:"off" ~trigger:"power" ();
        Types.transition ~source:"playing" ~target:"paused" ~trigger:"pause" ();
      ]
  in
  let m = Exec.Machine.create chart in
  ignore (Exec.Machine.send_all m [ "power"; "pause"; "power" ]);
  Alcotest.(check (list string)) "off again" [ "off" ] (Exec.Machine.config m);
  ignore (Exec.Machine.send m "power");
  (* history resumes paused, not the initial playing *)
  Alcotest.(check (list string)) "history resumes paused" [ "on"; "paused" ]
    (Exec.Machine.config m);
  (* the pure step (no history) resumes the initial substate *)
  let pure = Exec.step chart [ "off" ] "power" in
  Alcotest.(check (list string)) "pure step resumes initial" [ "on"; "playing" ]
    pure.Exec.new_config

let test_history_xml_roundtrip () =
  let chart =
    Types.chart ~id:"h" ~component:"c" ~initial:"a"
      [
        Types.state ~entry:[ "hello" ] "a";
        Types.state ~history:true ~substates:[ Types.state "x" ] ~initial:"x" "b";
      ]
      [ Types.transition ~source:"a" ~target:"b" ~trigger:"go" () ]
  in
  Alcotest.(check bool) "round trip" true
    (Xml_io.of_string (Xml_io.to_string chart) = chart)

(* ------------------------- bundles -------------------------------- *)

let test_bundle () =
  let bundle = Bundle.make ~id:"b" [ flat_chart; hier_chart ] in
  Alcotest.(check (list string)) "components" [ "door"; "player" ]
    (Bundle.components bundle);
  Alcotest.(check bool) "chart_for" true (Bundle.chart_for bundle "door" <> None);
  Alcotest.(check bool) "missing" true (Bundle.chart_for bundle "ghost" = None);
  Alcotest.(check (list string)) "clean" []
    (List.map (Format.asprintf "%a" Bundle.pp_problem) (Bundle.check bundle));
  let dup = Bundle.make ~id:"d" [ flat_chart; flat_chart ] in
  Alcotest.(check bool) "duplicate component" true
    (List.exists
       (function Bundle.Duplicate_component _ -> true | Bundle.Chart_problem _ -> false)
       (Bundle.check dup))

let test_bundle_xml_roundtrip () =
  let bundle = Bundle.make ~id:"b" [ flat_chart; hier_chart ] in
  let xml = Bundle.to_string bundle in
  Alcotest.(check bool) "identical" true (Bundle.of_string xml = bundle);
  Alcotest.(check bool) "wrong root" true
    (match Bundle.of_string "<x id=\"a\"/>" with
    | exception Bundle.Malformed _ -> true
    | _ -> false)

(* --- property: stepping is deterministic and stays within the chart's
   states --- *)

let gen_events = QCheck2.Gen.(list_size (int_range 0 30) (oneofl [ "open"; "close"; "lock"; "unlock"; "noise" ]))

let prop_deterministic =
  QCheck2.Test.make ~name:"same events give the same run" ~count:100 gen_events
    (fun events ->
      let run () = Exec.run ~guards:(fun _ -> true) flat_chart events in
      let final1, steps1 = run () in
      let final2, steps2 = run () in
      final1 = final2 && List.length steps1 = List.length steps2)

let prop_configs_valid =
  QCheck2.Test.make ~name:"every configuration is a path of known states" ~count:100
    gen_events (fun events ->
      let ids = Types.state_ids flat_chart in
      let _, steps = Exec.run flat_chart events in
      List.for_all
        (fun s ->
          List.for_all
            (fun st -> List.exists (String.equal st) ids)
            s.Exec.reaction.Exec.new_config)
        steps)

let suite =
  [
    Alcotest.test_case "state tree accessors" `Quick test_tree_accessors;
    Alcotest.test_case "flat stepping and outputs" `Quick test_flat_stepping;
    Alcotest.test_case "guards" `Quick test_guards;
    Alcotest.test_case "hierarchy: entry and priority" `Quick test_hierarchy;
    Alcotest.test_case "run over an event list" `Quick test_run;
    Alcotest.test_case "reachable states" `Quick test_reachable_states;
    Alcotest.test_case "valid charts are clean" `Quick test_validate_clean;
    Alcotest.test_case "each validation problem detected" `Quick test_validate_problems;
    Alcotest.test_case "XML round trip" `Quick test_xml_roundtrip;
    Alcotest.test_case "malformed XML rejected" `Quick test_xml_malformed;
    Alcotest.test_case "entry outputs" `Quick test_entry_outputs;
    Alcotest.test_case "history machine" `Quick test_history_machine;
    Alcotest.test_case "history/entry XML round trip" `Quick test_history_xml_roundtrip;
    Alcotest.test_case "behavior bundles" `Quick test_bundle;
    Alcotest.test_case "bundle XML round trip" `Quick test_bundle_xml_roundtrip;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_configs_valid;
  ]
