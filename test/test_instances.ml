(* Tests for event-instance analysis and argument-sensitive placement. *)

open Scenarioml

let test_collect_and_group () =
  let instances = Instances.collect Casestudies.Pims.scenario_set in
  Alcotest.(check int) "98 typed instances" 98 (List.length instances);
  let grouped = Instances.by_event_type Casestudies.Pims.scenario_set in
  Alcotest.(check int) "17 event types used" 17 (List.length grouped);
  let initiates = List.assoc "user-initiates" grouped in
  Alcotest.(check int) "one initiation per use case" 22 (List.length initiates)

let test_argument_profile () =
  let profile =
    Instances.argument_profile Casestudies.Pims.scenario_set "user-initiates"
  in
  match profile with
  | [ ("function", values) ] ->
      (* the function parameter enumerates the system's functionalities *)
      Alcotest.(check int) "22 distinct functionalities" 22 (List.length values);
      Alcotest.(check bool) "includes create portfolio" true
        (List.exists (String.equal "create portfolio") values)
  | _ -> Alcotest.fail "expected exactly the function parameter"

let test_relate () =
  let mk id args =
    {
      Instances.scenario = "s";
      event_id = id;
      event_type = "et";
      args;
    }
  in
  Alcotest.(check bool) "identical" true
    (Instances.relate (mk "a" [ ("p", "x") ]) (mk "b" [ ("p", "x") ])
    = Some Instances.Identical_args);
  Alcotest.(check bool) "differ in p" true
    (Instances.relate (mk "a" [ ("p", "x") ]) (mk "b" [ ("p", "y") ])
    = Some (Instances.Differ_in [ "p" ]));
  Alcotest.(check bool) "missing param counts as differing" true
    (Instances.relate (mk "a" [ ("p", "x"); ("q", "1") ]) (mk "b" [ ("p", "x") ])
    = Some (Instances.Differ_in [ "q" ]));
  let other = { (mk "c" []) with Instances.event_type = "other" } in
  Alcotest.(check bool) "different types unrelated" true
    (Instances.relate (mk "a" []) other = None)

let test_duplication_ratio () =
  (* system-authenticates has no parameters: all instances identical *)
  let r = Instances.duplication_ratio Casestudies.Pims.scenario_set "system-authenticates" in
  Alcotest.(check bool) "verbatim reuse > 1" true (r > 1.0);
  (* user-initiates instances all differ *)
  Alcotest.(check (float 0.001)) "all distinct" 1.0
    (Instances.duplication_ratio Casestudies.Pims.scenario_set "user-initiates");
  Alcotest.(check (float 0.001)) "unused type" 1.0
    (Instances.duplication_ratio Casestudies.Pims.scenario_set "ghost")

let test_placement_hook () =
  (* CRASH network view: place send/receive events on the org the
     arguments name, instead of the mapping's fixed components *)
  let set = Casestudies.Crash.network_scenario_set in
  let config =
    Walkthrough.Engine.config ~placement_hook:Casestudies.Crash.network_placement_hook ()
  in
  let scenario = Scen.find_exn set "interorg-cooperation" in
  let r =
    Walkthrough.Engine.evaluate_scenario ~config ~set
      ~architecture:(Casestudies.Crash.high_level_architecture ~orgs:2 ())
      ~mapping:Casestudies.Crash.network_mapping scenario
  in
  Alcotest.(check bool) "walks with argument-derived placement" true
    (Walkthrough.Verdict.is_consistent r);
  (* the police reply is now placed on police-cc because the sender
     argument says so *)
  match r.Walkthrough.Verdict.traces with
  | [ t ] ->
      let step5 = List.nth t.Walkthrough.Verdict.steps 4 in
      Alcotest.(check (list string)) "arg-derived placement" [ "police-cc" ]
        step5.Walkthrough.Verdict.components
  | _ -> Alcotest.fail "expected one trace"

let suite =
  [
    Alcotest.test_case "collect and group instances" `Quick test_collect_and_group;
    Alcotest.test_case "argument profiles" `Quick test_argument_profile;
    Alcotest.test_case "instance relationships" `Quick test_relate;
    Alcotest.test_case "duplication ratios" `Quick test_duplication_ratio;
    Alcotest.test_case "argument-sensitive placement hook" `Quick test_placement_hook;
  ]
