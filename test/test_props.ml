(* Cross-cutting property tests on randomly generated artifacts:
   serialization round trips and engine invariants. *)

let gen_id prefix =
  QCheck2.Gen.(
    let* n = int_range 0 9999 in
    return (Printf.sprintf "%s%d" prefix n))

let gen_ids prefix max_count =
  QCheck2.Gen.(
    let* n = int_range 1 max_count in
    return (List.init n (fun i -> Printf.sprintf "%s%d" prefix i)))

(* ---------------- random architectures ----------------------------- *)

(* components c0..c(n-1), connectors k0..k(m-1), random biconnect wiring *)
let gen_architecture =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* m = int_range 0 3 in
    let* wiring =
      list_size (int_range 0 12) (pair (int_range 0 (n + m - 1)) (int_range 0 (n + m - 1)))
    in
    return (n, m, wiring))

let build_architecture (n, m, wiring) =
  let brick i = if i < n then Printf.sprintf "c%d" i else Printf.sprintf "k%d" (i - n) in
  let base =
    List.fold_left
      (fun t i -> Adl.Build.add_component ~id:(Printf.sprintf "c%d" i) ~name:"C" t)
      (Adl.Build.create ~style:"layered" ~id:"rand" ~name:"Random" ())
      (List.init n Fun.id)
  in
  let base =
    List.fold_left
      (fun t i -> Adl.Build.add_connector ~id:(Printf.sprintf "k%d" i) ~name:"K" t)
      base (List.init m Fun.id)
  in
  List.fold_left
    (fun t (a, b) ->
      if a = b then t
      else
        match Adl.Build.biconnect t (brick a) (brick b) with
        | t -> t
        | exception Adl.Build.Duplicate _ -> t)
    base wiring

let graphs_agree a b =
  let ga = Adl.Graph.of_structure a and gb = Adl.Graph.of_structure b in
  List.sort String.compare (Adl.Graph.nodes ga)
  = List.sort String.compare (Adl.Graph.nodes gb)
  && List.for_all
       (fun u ->
         List.sort String.compare (Adl.Graph.successors ga u)
         = List.sort String.compare (Adl.Graph.successors gb u))
       (Adl.Graph.nodes ga)

let prop_adl_xml_roundtrip =
  QCheck2.Test.make ~name:"random architecture: xADL round trip is identity" ~count:100
    gen_architecture (fun spec ->
      let arch = build_architecture spec in
      Adl.Xml_io.of_string (Adl.Xml_io.to_string arch) = arch)

let prop_acme_roundtrip_preserves_graph =
  QCheck2.Test.make
    ~name:"random architecture: Acme round trip preserves bricks and edges" ~count:100
    gen_architecture (fun spec ->
      let arch = build_architecture spec in
      let back =
        Acme.Convert.to_structure
          (Acme.Parse.system (Acme.Print.system_to_string (Acme.Convert.of_structure arch)))
      in
      List.sort String.compare (Adl.Structure.brick_ids arch)
      = List.sort String.compare (Adl.Structure.brick_ids back)
      && graphs_agree arch back)

(* ---------------- random statecharts ------------------------------- *)

let gen_chart =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* transitions =
      list_size (int_range 0 10)
        (tup3 (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 3))
    in
    return (n, transitions))

let build_chart (n, transitions) =
  let state i = Printf.sprintf "s%d" i in
  Statechart.Types.chart ~id:"rand" ~component:"c" ~initial:"s0"
    (List.init n (fun i -> Statechart.Types.state (state i)))
    (List.mapi
       (fun idx (src, tgt, trig) ->
         Statechart.Types.transition
           ~id:(Printf.sprintf "t%d" idx)
           ~source:(state src) ~target:(state tgt)
           ~trigger:(Printf.sprintf "e%d" trig)
           ~outputs:(if idx mod 2 = 0 then [ "out" ] else [])
           ())
       transitions)

let prop_statechart_xml_roundtrip =
  QCheck2.Test.make ~name:"random statechart: XML round trip is identity" ~count:100
    gen_chart (fun spec ->
      let chart = build_chart spec in
      Statechart.Xml_io.of_string (Statechart.Xml_io.to_string chart) = chart)

let prop_statechart_run_total =
  QCheck2.Test.make ~name:"random statechart: running any event list never raises"
    ~count:100
    QCheck2.Gen.(pair gen_chart (list_size (int_range 0 20) (int_range 0 4)))
    (fun (spec, events) ->
      let chart = build_chart spec in
      let events = List.map (Printf.sprintf "e%d") events in
      let final, steps = Statechart.Exec.run chart events in
      List.length steps = List.length events && final <> [])

(* ---------------- random triple stores ----------------------------- *)

let gen_store =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (tup3 (gen_id "s") (gen_id "p") (oneof [ map (fun i -> `I i) (gen_id "o"); map (fun v -> `L v) (string_size ~gen:(oneofl [ 'a'; 'b'; ' '; 'z' ]) (int_range 0 8)) ])))

let build_store triples =
  let store = Semweb.Store.create () in
  let ns local = Semweb.Term.Vocab.sosae local in
  List.iter
    (fun (s, p, o) ->
      let obj =
        match o with
        | `I i -> Semweb.Term.iri (ns i)
        | `L v -> Semweb.Term.lit v
      in
      ignore (Semweb.Store.add store (Semweb.Term.triple (Semweb.Term.iri (ns s)) (ns p) obj)))
    triples;
  store

let prop_turtle_roundtrip =
  QCheck2.Test.make ~name:"random store: Turtle round trip preserves all triples"
    ~count:100 gen_store (fun triples ->
      let store = build_store triples in
      let reparsed = Semweb.Turtle.of_string (Semweb.Turtle.to_string store) in
      Semweb.Store.size reparsed = Semweb.Store.size store
      && List.for_all (Semweb.Store.mem reparsed) (Semweb.Store.to_list store))

let prop_closure_monotone =
  QCheck2.Test.make ~name:"random store: reasoning closure contains the input" ~count:50
    gen_store (fun triples ->
      let store = build_store triples in
      let closed = Semweb.Reason.closure store in
      Semweb.Store.size closed >= Semweb.Store.size store
      && List.for_all (Semweb.Store.mem closed) (Semweb.Store.to_list store))

(* ---------------- linearization invariants ------------------------- *)

let tiny_ontology =
  Ontology.Build.(
    create ~id:"o" ~name:"O" |> add_event_type ~id:"e" ~name:"e" ~template:"event")

(* random event trees over a single event type *)
let gen_event_tree =
  QCheck2.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self depth ->
        let counter = ref 0 in
        ignore counter;
        let leaf =
          map
            (fun i -> `Leaf i)
            (int_range 0 1000000)
        in
        if depth = 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun body -> `Seq body) (list_size (int_range 1 3) (self (depth - 1)));
              map (fun branches -> `Alt branches)
                (list_size (int_range 1 3) (list_size (int_range 0 2) (self (depth - 1))));
              map (fun body -> `Opt body) (list_size (int_range 1 2) (self (depth - 1)));
              map (fun body -> `Iter body) (list_size (int_range 1 2) (self (depth - 1)));
            ]))

let build_event counter tree =
  let fresh () =
    incr counter;
    Printf.sprintf "n%d" !counter
  in
  let rec go = function
    | `Leaf _ -> Scenarioml.Event.typed ~id:(fresh ()) ~event_type:"e" []
    | `Seq body ->
        Scenarioml.Event.Compound
          { id = fresh (); pattern = Scenarioml.Event.Sequence; body = List.map go body }
    | `Alt branches ->
        Scenarioml.Event.Alternation
          { id = fresh (); branches = List.map (List.map go) branches }
    | `Opt body -> Scenarioml.Event.Optional { id = fresh (); body = List.map go body }
    | `Iter body ->
        Scenarioml.Event.Iteration
          { id = fresh (); bound = Scenarioml.Event.Zero_or_more; body = List.map go body }
  in
  go tree

let prop_linearize_bounded =
  QCheck2.Test.make ~name:"linearization respects the trace cap" ~count:100 gen_event_tree
    (fun tree ->
      let counter = ref 0 in
      let scenario =
        Scenarioml.Scen.scenario ~id:"s" ~name:"S" [ build_event counter tree ]
      in
      let set = Scenarioml.Scen.make_set ~id:"x" ~name:"X" tiny_ontology [ scenario ] in
      let config = { Scenarioml.Linearize.iteration_unroll = 2; max_traces = 17 } in
      let { Scenarioml.Linearize.traces; _ } =
        Scenarioml.Linearize.scenario ~config set scenario
      in
      traces <> [] && List.length traces <= 17)

let prop_linearize_only_primitive_steps =
  QCheck2.Test.make ~name:"linearized traces contain only primitive events" ~count:100
    gen_event_tree (fun tree ->
      let counter = ref 0 in
      let scenario =
        Scenarioml.Scen.scenario ~id:"s" ~name:"S" [ build_event counter tree ]
      in
      let set = Scenarioml.Scen.make_set ~id:"x" ~name:"X" tiny_ontology [ scenario ] in
      let { Scenarioml.Linearize.traces; _ } = Scenarioml.Linearize.scenario set scenario in
      List.for_all
        (List.for_all (fun step ->
             match step.Scenarioml.Linearize.step_event with
             | Scenarioml.Event.Simple _ | Scenarioml.Event.Typed _ -> true
             | _ -> false))
        traces)

(* ---------------- constraint language ------------------------------ *)

let gen_constraint =
  QCheck2.Gen.(
    let* kind = int_range 0 4 in
    let* a = gen_id "el" in
    let* b = gen_id "el" in
    let* c = gen_id "el" in
    return
      (match kind with
      | 0 -> Styles.Constraint_lang.Connect { src = a; dst = b }
      | 1 -> Styles.Constraint_lang.Forbid { src = a; dst = b }
      | 2 -> Styles.Constraint_lang.Route_via { src = a; dst = b; via = c }
      | 3 -> Styles.Constraint_lang.Mediate { src = a; dst = b }
      | _ -> Styles.Constraint_lang.Acyclic))

let prop_constraint_roundtrip =
  QCheck2.Test.make ~name:"constraints: to_string then parse is identity" ~count:200
    QCheck2.Gen.(list_size (int_range 0 10) gen_constraint)
    (fun constraints ->
      let text =
        String.concat "\n" (List.map Styles.Constraint_lang.to_string constraints)
      in
      Styles.Constraint_lang.parse text = constraints)

(* ---------------- mapping round trip ------------------------------- *)

let prop_mapping_xml_roundtrip =
  QCheck2.Test.make ~name:"random mapping: XML round trip is identity" ~count:100
    QCheck2.Gen.(
      list_size (int_range 0 10) (pair (gen_id "et") (gen_ids "c" 4)))
    (fun entries ->
      (* deduplicate event types to keep the mapping well-formed *)
      let entries =
        List.fold_left
          (fun acc (et, cs) -> if List.mem_assoc et acc then acc else acc @ [ (et, cs) ])
          [] entries
      in
      let mapping =
        {
          Mapping.Types.mapping_id = "m";
          ontology_id = "o";
          architecture_id = "a";
          entries =
            List.map
              (fun (event_type, components) ->
                { Mapping.Types.event_type; components; rationale = "r" })
              entries;
        }
      in
      Mapping.Xml_io.of_string (Mapping.Xml_io.to_string mapping) = mapping)

(* ---------------- C2 style conformance ----------------------------- *)

(* layered C2 stacks: [widths] components per layer, a bus connector
   between consecutive layers, every adjacent pair joined top-to-bottom *)
let gen_c2_stack = QCheck2.Gen.(list_size (int_range 2 4) (int_range 1 3))

let build_c2_stack widths =
  let open Adl.Build in
  let component_name layer i = Printf.sprintf "l%dc%d" layer i in
  let bus_name layer = Printf.sprintf "bus%d" layer in
  let with_components =
    List.fold_left
      (fun (t, layer) width ->
        ( List.fold_left
            (fun t i -> add_component ~id:(component_name layer i) ~name:"C" t)
            t
            (List.init width Fun.id),
          layer + 1 ))
      (create ~style:"c2" ~id:"stack" ~name:"C2 stack" (), 0)
      widths
    |> fst
  in
  let with_buses =
    List.fold_left
      (fun t layer -> add_connector ~id:(bus_name layer) ~name:"Bus" t)
      with_components
      (List.init (List.length widths - 1) Fun.id)
  in
  (* C2 wiring convention (as in the CRASH case study): the upper
     element's "bottom" side joins the lower element's "top" side. Every
     layer-L component sits above bus L; bus L's bottom reaches the
     layer-L+1 components. *)
  let join t upper lower =
    let iface side other =
      interface
        ~tags:[ ("side", side) ]
        ~direction:Adl.Structure.In_out
        (Printf.sprintf "%s_%s" (if side = "bottom" then "bot" else "top") other)
    in
    let ensure t elt i =
      let has =
        List.exists
          (fun x -> String.equal x.Adl.Structure.iface_id i.Adl.Structure.iface_id)
          (Adl.Structure.element_interfaces t elt)
      in
      if has then t
      else
        match Adl.Structure.find_component t elt with
        | Some c ->
            let c =
              { c with Adl.Structure.comp_interfaces = c.Adl.Structure.comp_interfaces @ [ i ] }
            in
            {
              t with
              Adl.Structure.components =
                List.map
                  (fun x -> if String.equal x.Adl.Structure.comp_id elt then c else x)
                  t.Adl.Structure.components;
            }
        | None -> (
            match Adl.Structure.find_connector t elt with
            | Some c ->
                let c =
                  {
                    c with
                    Adl.Structure.conn_interfaces = c.Adl.Structure.conn_interfaces @ [ i ];
                  }
                in
                {
                  t with
                  Adl.Structure.connectors =
                    List.map
                      (fun x -> if String.equal x.Adl.Structure.conn_id elt then c else x)
                      t.Adl.Structure.connectors;
                }
            | None -> t)
    in
    let t = ensure t upper (iface "bottom" lower) in
    let t = ensure t lower (iface "top" upper) in
    add_link ~from_:(upper, "bot_" ^ lower) ~to_:(lower, "top_" ^ upper) t
  in
  List.fold_left
    (fun (t, layer) width ->
      let t =
        if layer = List.length widths - 1 then t
        else
          (* this layer's components sit above bus [layer] *)
          List.fold_left
            (fun t i -> join t (component_name layer i) (bus_name layer))
            t
            (List.init width Fun.id)
      in
      let t =
        if layer = 0 then t
        else
          (* bus above joins down to this layer's components *)
          List.fold_left
            (fun t i -> join t (bus_name (layer - 1)) (component_name layer i))
            t
            (List.init width Fun.id)
      in
      (t, layer + 1))
    (with_buses, 0) widths
  |> fst

let prop_c2_stacks_conform =
  QCheck2.Test.make ~name:"generated C2 stacks conform; a direct link breaks them"
    ~count:60 gen_c2_stack (fun widths ->
      let arch = build_c2_stack widths in
      let clean = Styles.Check.check_declared arch = [] in
      (* adding a direct component-component link violates c2.no-direct *)
      let a = "l0c0" in
      let b = Printf.sprintf "l1c0" in
      let broken = Adl.Build.biconnect arch a b in
      let violations = Styles.Check.check_declared broken in
      clean
      && List.exists (fun v -> String.equal v.Styles.Rule.rule "c2.no-direct") violations)

(* ---------------- prose round trip --------------------------------- *)

let gen_prose_scenario =
  QCheck2.Gen.(
    let* n = int_range 1 10 in
    let* texts =
      flatten_l
        (List.init n (fun _ ->
             string_size
               ~gen:(oneofl [ 'a'; 'b'; 'c'; ' '; ','; 'x' ])
               (int_range 1 30)))
    in
    (* event text must not be blank and must not look like a numbered line *)
    let texts =
      List.map
        (fun t ->
          let t = "ev " ^ String.trim t in
          t)
        texts
    in
    return texts)

let prop_prose_roundtrip =
  QCheck2.Test.make ~name:"prose round trip preserves event count" ~count:100
    gen_prose_scenario (fun texts ->
      let scenario =
        Scenarioml.Scen.scenario ~id:"p" ~name:"Prose test"
          (List.mapi
             (fun i t -> Scenarioml.Event.simple ~id:(Printf.sprintf "e%d" i) t)
             texts)
      in
      let set =
        Scenarioml.Scen.make_set ~id:"s" ~name:"S" tiny_ontology [ scenario ]
      in
      let prose = Scenarioml.Text_io.to_prose tiny_ontology set scenario in
      let back = Scenarioml.Text_io.of_prose prose in
      List.length back.Scenarioml.Scen.events = List.length texts)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_adl_xml_roundtrip;
    QCheck_alcotest.to_alcotest prop_acme_roundtrip_preserves_graph;
    QCheck_alcotest.to_alcotest prop_statechart_xml_roundtrip;
    QCheck_alcotest.to_alcotest prop_statechart_run_total;
    QCheck_alcotest.to_alcotest prop_turtle_roundtrip;
    QCheck_alcotest.to_alcotest prop_closure_monotone;
    QCheck_alcotest.to_alcotest prop_linearize_bounded;
    QCheck_alcotest.to_alcotest prop_linearize_only_primitive_steps;
    QCheck_alcotest.to_alcotest prop_constraint_roundtrip;
    QCheck_alcotest.to_alcotest prop_mapping_xml_roundtrip;
    QCheck_alcotest.to_alcotest prop_prose_roundtrip;
    QCheck_alcotest.to_alcotest prop_c2_stacks_conform;
  ]
