(* The interned-ID/CSR Adl.Graph against the frozen pre-rewrite
   implementation (Graph_reference): on random architectures every
   query must answer identically — the rewrite changed representation,
   not semantics. Plus representation-independent path validity. *)

(* Random architectures: components c0.., connectors k0.., wired with a
   mix of bidirectional channels, directed require/provide links, and
   connector-routed links, so the direction filtering in of_structure
   is exercised, not just In_out edges. *)
type wire = Bi of int * int | Dir of int * int | Via of int * int * int

let gen_spec =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* m = int_range 0 3 in
    let endpoint = int_range 0 (n + m - 1) in
    let* wires =
      list_size (int_range 0 14)
        (oneof
           [
             map (fun (a, b) -> Bi (a, b)) (pair endpoint endpoint);
             map (fun (a, b) -> Dir (a, b)) (pair endpoint endpoint);
             map (fun ((a, b), k) -> Via (a, b, k)) (pair (pair endpoint endpoint) (int_range 0 2));
           ])
    in
    return (n, m, wires))

let build_spec (n, m, wires) =
  let brick i = if i < n then Printf.sprintf "c%d" i else Printf.sprintf "k%d" (i - n) in
  let base =
    List.fold_left
      (fun t i -> Adl.Build.add_component ~id:(Printf.sprintf "c%d" i) ~name:"C" t)
      (Adl.Build.create ~id:"rand" ~name:"Random" ())
      (List.init n Fun.id)
  in
  let base =
    List.fold_left
      (fun t i -> Adl.Build.add_connector ~id:(Printf.sprintf "k%d" i) ~name:"K" t)
      base (List.init m Fun.id)
  in
  List.fold_left
    (fun t wire ->
      let wired =
        match wire with
        | Bi (a, b) when a <> b -> (fun () -> Adl.Build.biconnect t (brick a) (brick b))
        | Dir (a, b) when a <> b -> (fun () -> Adl.Build.connect t (brick a) (brick b))
        | Via (a, b, k) when a <> b && m > 0 ->
            fun () ->
              Adl.Build.connect ~via:(Printf.sprintf "k%d" (k mod m)) t (brick a) (brick b)
        | _ -> fun () -> t
      in
      match wired () with
      | t -> t
      | exception Adl.Build.Duplicate _ -> t
      | exception Adl.Build.Unknown _ -> t)
    base wires

let queries g = "ghost" :: Adl.Graph.nodes g

let pairs g =
  let ids = queries g in
  List.concat_map (fun a -> List.map (fun b -> (a, b)) ids) ids

let with_both spec check =
  let arch = build_spec spec in
  check (Adl.Graph.of_structure arch) (Graph_reference.of_structure arch)

let prop_structure_agrees =
  QCheck2.Test.make ~name:"graph: nodes/successors/degree match the reference" ~count:200
    gen_spec (fun spec ->
      with_both spec (fun g r ->
          Adl.Graph.nodes g = Graph_reference.nodes r
          && Adl.Graph.edge_count g = Graph_reference.edge_count r
          && List.for_all
               (fun id ->
                 Adl.Graph.successors g id = Graph_reference.successors r id
                 && Adl.Graph.predecessors g id = Graph_reference.predecessors r id
                 && Adl.Graph.degree g id = Graph_reference.degree r id
                 && Adl.Graph.is_connector g id = Graph_reference.is_connector r id)
               (queries g)))

let prop_adjacent_reachable_agree =
  QCheck2.Test.make ~name:"graph: adjacent and reachable match the reference" ~count:200
    gen_spec (fun spec ->
      with_both spec (fun g r ->
          List.for_all
            (fun (a, b) ->
              Adl.Graph.adjacent g a b = Graph_reference.adjacent r a b
              && Adl.Graph.reachable ~policy:Adl.Graph.Routed g a b
                 = Graph_reference.reachable ~policy:Graph_reference.Routed r a b
              && Adl.Graph.reachable ~policy:Adl.Graph.Direct g a b
                 = Graph_reference.reachable ~policy:Graph_reference.Direct r a b)
            (pairs g)))

let prop_paths_agree =
  QCheck2.Test.make ~name:"graph: BFS paths are byte-identical to the reference"
    ~count:200 gen_spec (fun spec ->
      with_both spec (fun g r ->
          List.for_all
            (fun (a, b) ->
              Adl.Graph.path ~policy:Adl.Graph.Routed g a b
              = Graph_reference.path ~policy:Graph_reference.Routed r a b
              && Adl.Graph.path ~policy:Adl.Graph.Direct g a b
                 = Graph_reference.path ~policy:Graph_reference.Direct r a b)
            (pairs g)))

let prop_components_agree =
  QCheck2.Test.make ~name:"graph: undirected components match the reference" ~count:200
    gen_spec (fun spec ->
      with_both spec (fun g r ->
          Adl.Graph.undirected_components g = Graph_reference.undirected_components r))

(* Validity, independent of any reference: a returned path starts at the
   source, ends at the target, follows existing edges, and under Direct
   policy routes only through connectors. *)
let valid_path g policy a b = function
  | None -> true
  | Some [] -> false
  | Some (h :: _ as p) ->
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
      let rec edges_ok = function
        | x :: (y :: _ as tl) -> Adl.Graph.adjacent g x y && edges_ok tl
        | [ _ ] | [] -> true
      in
      let intermediates_ok =
        match (policy, p) with
        | Adl.Graph.Routed, _ | _, ([] | [ _ ]) -> true
        | Adl.Graph.Direct, _ :: rest ->
            let rec inner = function
              | [ _ ] | [] -> true
              | x :: tl -> Adl.Graph.is_connector g x && inner tl
            in
            inner rest
      in
      String.equal h a && String.equal (last p) b && edges_ok p && intermediates_ok

let prop_paths_valid =
  QCheck2.Test.make
    ~name:"graph: paths follow edges; Direct intermediates are connectors" ~count:200
    gen_spec (fun spec ->
      let arch = build_spec spec in
      let g = Adl.Graph.of_structure arch in
      List.for_all
        (fun (a, b) ->
          valid_path g Adl.Graph.Routed a b (Adl.Graph.path ~policy:Adl.Graph.Routed g a b)
          && valid_path g Adl.Graph.Direct a b
               (Adl.Graph.path ~policy:Adl.Graph.Direct g a b))
        (List.filter (fun (a, b) -> not (String.equal a b)) (pairs g)))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_structure_agrees;
    QCheck_alcotest.to_alcotest prop_adjacent_reachable_agree;
    QCheck_alcotest.to_alcotest prop_paths_agree;
    QCheck_alcotest.to_alcotest prop_components_agree;
    QCheck_alcotest.to_alcotest prop_paths_valid;
  ]
