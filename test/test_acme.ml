(* Tests for the Acme interchange substrate (paper 8). *)

let sample_text =
  {|
// a small layered system
System demo : layered = {
  Property name = "Demo system";
  Component ui = {
    Property name = "User Interface";
    Property responsibility_1 = "talk to the user";
    Property tag_layer = "2";
    Port out = { Property direction = "required"; };
  };
  Component store = {
    Property name = "Store";
    Property tag_layer = "1";
    Port in = { Property direction = "provided"; };
  };
  Connector bus = {
    Role top;
    Role bottom;
  };
  Attachment ui.out to bus.top;
  Attachment store.in to bus.bottom;
};
|}

let test_parse () =
  let sys = Acme.Parse.system sample_text in
  Alcotest.(check string) "name" "demo" sys.Acme.Ast.sys_name;
  Alcotest.(check (option string)) "family" (Some "layered") sys.Acme.Ast.family;
  Alcotest.(check int) "components" 2 (List.length sys.Acme.Ast.components);
  Alcotest.(check int) "connectors" 1 (List.length sys.Acme.Ast.connectors);
  Alcotest.(check int) "attachments" 2 (List.length sys.Acme.Ast.attachments);
  let ui = List.hd sys.Acme.Ast.components in
  Alcotest.(check (option string)) "prop" (Some "User Interface")
    (Acme.Ast.string_prop ui.Acme.Ast.comp_props "name");
  Alcotest.(check int) "ports" 1 (List.length ui.Acme.Ast.ports)

let test_parse_literals_and_comments () =
  let sys =
    Acme.Parse.system
      {|System x = {
        /* block comment
           over lines */
        Property i : int = 42;
        Property f : float = 2.5;
        Property b : bool = true;
        Property s : string = "with \"escape\" and \n";
      };|}
  in
  Alcotest.(check (option int)) "int" (Some 42) (Acme.Ast.int_prop sys.Acme.Ast.sys_props "i");
  Alcotest.(check bool) "float" true
    (match Acme.Ast.find_prop sys.Acme.Ast.sys_props "f" with
    | Some (Acme.Ast.Float f) -> f = 2.5
    | _ -> false);
  Alcotest.(check bool) "bool" true
    (Acme.Ast.find_prop sys.Acme.Ast.sys_props "b" = Some (Acme.Ast.Bool true))

let test_parse_errors () =
  let fails s =
    match Acme.Parse.system s with exception Acme.Parse.Parse_error _ -> true | _ -> false
  in
  Alcotest.(check bool) "not a system" true (fails "Component x = {};");
  Alcotest.(check bool) "unterminated" true (fails "System x = {");
  Alcotest.(check bool) "bad attachment" true
    (fails "System x = { Attachment a to b; };");
  Alcotest.(check bool) "junk after" true (fails "System x = {}; garbage")

let test_print_parse_roundtrip () =
  let sys = Acme.Parse.system sample_text in
  let printed = Acme.Print.system_to_string sys in
  let reparsed = Acme.Parse.system printed in
  Alcotest.(check bool) "ast round trip" true (sys = reparsed)

let graphs_agree a b =
  let ga = Adl.Graph.of_structure a and gb = Adl.Graph.of_structure b in
  List.sort String.compare (Adl.Graph.nodes ga)
  = List.sort String.compare (Adl.Graph.nodes gb)
  && List.for_all
       (fun u ->
         List.sort String.compare (Adl.Graph.successors ga u)
         = List.sort String.compare (Adl.Graph.successors gb u))
       (Adl.Graph.nodes ga)

let test_structure_roundtrip_pims () =
  let original = Casestudies.Pims.architecture in
  let acme = Acme.Convert.of_structure original in
  let text = Acme.Print.system_to_string acme in
  let back = Acme.Convert.to_structure (Acme.Parse.system text) in
  Alcotest.(check (list string)) "brick ids preserved"
    (Adl.Structure.brick_ids original |> List.sort String.compare)
    (Adl.Structure.brick_ids back |> List.sort String.compare);
  Alcotest.(check bool) "communication graph preserved" true (graphs_agree original back);
  Alcotest.(check (option string)) "style preserved" (Some "layered") back.Adl.Structure.style;
  let mc = Adl.Structure.component_exn back "master-controller" in
  Alcotest.(check int) "responsibilities preserved" 3
    (List.length mc.Adl.Structure.responsibilities);
  Alcotest.(check (option int)) "layer tag preserved" (Some 4) (Adl.Structure.layer_of mc)

let test_structure_roundtrip_crash () =
  (* the CRASH entity has interface side tags and conn-comp links *)
  let original = Casestudies.Crash.entity_architecture in
  let back =
    Acme.Convert.to_structure
      (Acme.Parse.system (Acme.Print.system_to_string (Acme.Convert.of_structure original)))
  in
  Alcotest.(check bool) "communication graph preserved" true (graphs_agree original back);
  (* side tags survive, so the C2 style still passes *)
  Alcotest.(check (list string)) "still conforms to C2" []
    (List.map (fun v -> v.Styles.Rule.rule) (Styles.Check.check_declared back))

let test_fig4_through_acme () =
  (* the whole Fig. 4 experiment works on an architecture that made a
     round trip through Acme text *)
  let via_acme arch =
    Acme.Convert.to_structure
      (Acme.Parse.system (Acme.Print.system_to_string (Acme.Convert.of_structure arch)))
  in
  let set = Casestudies.Pims.scenario_set in
  let eval arch s =
    Walkthrough.Engine.evaluate_scenario ~set ~architecture:arch
      ~mapping:Casestudies.Pims.mapping s
  in
  let intact = via_acme Casestudies.Pims.architecture in
  let broken = via_acme Casestudies.Pims.broken_architecture in
  Alcotest.(check bool) "intact: prices walk" true
    (Walkthrough.Verdict.is_consistent (eval intact Casestudies.Pims.get_share_prices));
  Alcotest.(check bool) "broken: create portfolio walks" true
    (Walkthrough.Verdict.is_consistent (eval broken Casestudies.Pims.create_portfolio));
  Alcotest.(check bool) "broken: prices fail" false
    (Walkthrough.Verdict.is_consistent (eval broken Casestudies.Pims.get_share_prices))

let test_synthesized_bridges () =
  (* component-component and connector-connector links need bridges *)
  let arch =
    let open Adl.Build in
    create ~id:"br" ~name:"Bridges" ()
    |> add_component ~id:"a" ~name:"A"
    |> add_component ~id:"b" ~name:"B"
    |> add_connector ~id:"k1" ~name:"K1"
    |> add_connector ~id:"k2" ~name:"K2"
    |> fun t ->
    biconnect t "a" "b" |> fun t ->
    biconnect t "k1" "k2" |> fun t -> biconnect t "a" "k1"
  in
  let acme = Acme.Convert.of_structure arch in
  Alcotest.(check int) "one synthesized connector" 3 (List.length acme.Acme.Ast.connectors);
  Alcotest.(check int) "one synthesized component" 3 (List.length acme.Acme.Ast.components);
  let back = Acme.Convert.to_structure acme in
  Alcotest.(check (list string)) "bridges collapsed"
    [ "a"; "b"; "k1"; "k2" ]
    (List.sort String.compare (Adl.Structure.brick_ids back));
  Alcotest.(check bool) "graph preserved" true (graphs_agree arch back);
  Alcotest.(check int) "three links" 3 (List.length back.Adl.Structure.links)

let suite =
  [
    Alcotest.test_case "parse a system" `Quick test_parse;
    Alcotest.test_case "literals and comments" `Quick test_parse_literals_and_comments;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse round trip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "PIMS structure round trip" `Quick test_structure_roundtrip_pims;
    Alcotest.test_case "CRASH entity round trip (C2 tags)" `Quick
      test_structure_roundtrip_crash;
    Alcotest.test_case "Fig. 4 reproduced through Acme" `Quick test_fig4_through_acme;
    Alcotest.test_case "synthesized bridges collapse" `Quick test_synthesized_bridges;
  ]
