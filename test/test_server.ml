(* The evaluation server: HTTP parser unit + property tests, router
   dispatch, and end-to-end daemon tests over real sockets — including
   the paper's Fig. 4 excise-and-re-evaluate flow as HTTP calls, whose
   verdicts must be bit-identical to an in-process Session. *)

module Http = Server.Http
module Router = Server.Router

(* ---------------- HTTP parser: units ------------------------------ *)

let parse_one bytes =
  let p = Http.parser_ () in
  Http.feed p bytes;
  Http.next p

let test_parse_simple () =
  match parse_one "GET /sessions/a%20b/stats?x=1&y=two+three HTTP/1.1\r\nHost: h\r\n\r\n" with
  | `Request r ->
      Alcotest.(check bool) "GET" true (r.Http.meth = Http.GET);
      Alcotest.(check (list string))
        "decoded path" [ "sessions"; "a b"; "stats" ] r.Http.path;
      Alcotest.(check (list (pair string string)))
        "decoded query"
        [ ("x", "1"); ("y", "two three") ]
        r.Http.query;
      Alcotest.(check bool) "keep alive" true (Http.keep_alive r);
      Alcotest.(check string) "body empty" "" r.Http.body
  | `Need_more -> Alcotest.fail "need more"
  | `Error e -> Alcotest.fail (Http.parse_error_message e)

let test_parse_body_and_pipeline () =
  let p = Http.parser_ () in
  Http.feed p "POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /b HTTP/1.1\r\n\r\n";
  (match Http.next p with
  | `Request r ->
      Alcotest.(check string) "body" "hello" r.Http.body;
      Alcotest.(check (list string)) "path a" [ "a" ] r.Http.path
  | _ -> Alcotest.fail "first request");
  (match Http.next p with
  | `Request r ->
      Alcotest.(check (list string)) "pipelined path b" [ "b" ] r.Http.path;
      Alcotest.(check bool) "drained" true (Http.buffered p = 0)
  | _ -> Alcotest.fail "second request");
  Alcotest.(check bool) "then quiescent" true (Http.next p = `Need_more)

let test_parse_errors () =
  let err bytes =
    match parse_one bytes with
    | `Error e -> e
    | `Request _ -> Alcotest.fail ("parsed: " ^ String.escaped bytes)
    | `Need_more -> Alcotest.fail ("need more: " ^ String.escaped bytes)
  in
  (match err "GET /\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "missing version");
  (match err "GET / HTTP/2\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "http/2");
  (match err "GET nothing HTTP/1.1\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "relative target");
  (match err "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" with
  | Http.Unsupported _ -> ()
  | _ -> Alcotest.fail "transfer-encoding");
  (match err "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "conflicting lengths");
  (* errors are sticky *)
  let p = Http.parser_ () in
  Http.feed p "BAD\r\n\r\n";
  (match Http.next p with `Error _ -> () | _ -> Alcotest.fail "bad line");
  Http.feed p "GET / HTTP/1.1\r\n\r\n";
  match Http.next p with
  | `Error _ -> ()
  | _ -> Alcotest.fail "error should be sticky"

(* RFC 9110 §13.1.2: If-None-Match uses weak comparison, so a W/
   prefix on a candidate (e.g. added by an intermediary) must still
   match the server's strong tag. *)
let test_if_none_match_weak () =
  let request header_value =
    match
      parse_one
        (Printf.sprintf "POST /x HTTP/1.1\r\nIf-None-Match: %s\r\n\r\n"
           header_value)
    with
    | `Request r -> r
    | `Need_more | `Error _ -> Alcotest.fail "if-none-match request"
  in
  let matches v = Http.if_none_match_matches (request v) ~etag:{|"r0-ab-1"|} in
  Alcotest.(check bool) "strong candidate" true (matches {|"r0-ab-1"|});
  Alcotest.(check bool) "weak candidate" true (matches {|W/"r0-ab-1"|});
  Alcotest.(check bool) "weak member of a list" true
    (matches {|"other", W/"r0-ab-1"|});
  Alcotest.(check bool) "star" true (matches "*");
  Alcotest.(check bool) "weak mismatch stays a miss" false
    (matches {|W/"r1-ab-2"|})

let test_parse_limits () =
  let p = Http.parser_ ~max_head:64 ~max_body:10 () in
  Http.feed p ("GET / HTTP/1.1\r\nX: " ^ String.make 100 'a' ^ "\r\n\r\n");
  (match Http.next p with
  | `Error Http.Head_too_large -> ()
  | _ -> Alcotest.fail "head limit");
  let p = Http.parser_ ~max_body:10 () in
  Http.feed p "POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n";
  (match Http.next p with
  | `Error Http.Body_too_large -> ()
  | _ -> Alcotest.fail "body limit");
  (* a huge declared length must be rejected before the bytes arrive,
     and without overflowing *)
  let p = Http.parser_ ~max_body:10 () in
  Http.feed p "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n";
  match Http.next p with
  | `Error Http.Body_too_large -> ()
  | _ -> Alcotest.fail "overflowing length"

let test_serialize () =
  let r = Http.response ~headers:[ ("Content-Type", "text/plain") ] 200 "hi" in
  Alcotest.(check string) "basic"
    "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi"
    (Http.serialize ~close:false r);
  Alcotest.(check bool) "close header" true
    (let s = Http.serialize ~close:true r in
     let rec contains i =
       i >= 0
       && (String.length s - i >= 17 && String.sub s i 17 = "Connection: close"
          || contains (i - 1))
     in
     contains (String.length s - 17));
  (* HEAD keeps Content-Length but drops the body *)
  let head = Http.serialize ~request_meth:Http.HEAD ~close:false r in
  Alcotest.(check bool) "head has length" true
    (String.length head < String.length (Http.serialize ~close:false r));
  Alcotest.(check string) "head ends at blank line" "\r\n\r\n"
    (String.sub head (String.length head - 4) 4)

(* ---------------- HTTP parser: properties -------------------------- *)

(* the bytes of one valid request *)
let gen_request_bytes =
  QCheck2.Gen.(
    let ident = string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '-' ]) (int_range 1 8) in
    let* meth = oneofl [ "GET"; "POST"; "DELETE"; "PUT" ] in
    let* segments = list_size (int_range 0 4) ident in
    let* body = string_size ~gen:(oneofl [ 'x'; '{'; '"'; ' '; '\n' ]) (int_range 0 64) in
    let* extra_headers = list_size (int_range 0 3) (pair ident ident) in
    let target = "/" ^ String.concat "/" segments in
    let head =
      Printf.sprintf "%s %s HTTP/1.1\r\n%sContent-Length: %d\r\n\r\n" meth target
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf "x-%s: %s\r\n" k v) extra_headers))
        (String.length body)
    in
    return (head ^ body))

(* a valid request and a random chunking of its bytes *)
let gen_request_and_cuts =
  QCheck2.Gen.(
    let* bytes = gen_request_bytes in
    let* cuts = list_size (int_range 0 8) (int_range 0 (String.length bytes)) in
    return (bytes, cuts))

let chunks_of bytes cuts =
  let cuts = List.sort_uniq compare (0 :: String.length bytes :: cuts) in
  let rec go = function
    | a :: (b :: _ as rest) -> String.sub bytes a (b - a) :: go rest
    | _ -> []
  in
  go cuts

let prop_torn_reads =
  QCheck2.Test.make
    ~name:"http parser: any chunking of a valid request parses identically"
    ~count:500 gen_request_and_cuts (fun (bytes, cuts) ->
      let whole =
        match parse_one bytes with
        | `Request r -> r
        | _ -> QCheck2.Test.fail_report "whole request did not parse"
      in
      let p = Http.parser_ () in
      let result = ref `Need_more in
      List.iter
        (fun chunk ->
          Http.feed p chunk;
          match Http.next p with
          | `Request r -> result := `Request r
          | `Need_more -> ()
          | `Error e -> QCheck2.Test.fail_report (Http.parse_error_message e))
        (chunks_of bytes cuts);
      match !result with
      | `Request r -> r = whole && Http.buffered p = 0
      | `Need_more -> QCheck2.Test.fail_report "chunked feed never completed")

(* Several requests pipelined onto one connection, torn at arbitrary
   byte boundaries (cuts may fall inside a request, between requests,
   or interleave several in one chunk), must parse to exactly the
   request list that one-request-per-connection parsing yields. *)
let gen_pipeline_and_cuts =
  QCheck2.Gen.(
    let* requests = list_size (int_range 1 4) gen_request_bytes in
    let total = String.length (String.concat "" requests) in
    let* cuts = list_size (int_range 0 12) (int_range 0 total) in
    return (requests, cuts))

let prop_pipelined_framing =
  QCheck2.Test.make
    ~name:
      "http parser: a pipelined connection parses to the same requests as \
       one per connection"
    ~count:500 gen_pipeline_and_cuts (fun (requests, cuts) ->
      let expected =
        List.map
          (fun bytes ->
            match parse_one bytes with
            | `Request r -> r
            | _ -> QCheck2.Test.fail_report "individual request did not parse")
          requests
      in
      let p = Http.parser_ () in
      let parsed = ref [] in
      let rec drain () =
        match Http.next p with
        | `Request r ->
            parsed := r :: !parsed;
            drain ()
        | `Need_more -> ()
        | `Error e -> QCheck2.Test.fail_report (Http.parse_error_message e)
      in
      List.iter
        (fun chunk ->
          Http.feed p chunk;
          drain ())
        (chunks_of (String.concat "" requests) cuts);
      List.rev !parsed = expected && Http.buffered p = 0)

let prop_suppressed_body =
  QCheck2.Test.make
    ~name:
      "http serializer: 204/304/1xx responses carry no body and declare \
       Content-Length: 0"
    ~count:200
    QCheck2.Gen.(
      pair
        (oneofl [ 100; 101; 204; 304 ])
        (string_size ~gen:printable (int_range 0 100)))
    (fun (status, body) ->
      let s = Http.serialize ~close:false (Http.response status body) in
      let contains needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = needle || go (i + 1))
        in
        go 0
      in
      String.length s >= 4
      && String.sub s (String.length s - 4) 4 = "\r\n\r\n"
      && contains "Content-Length: 0\r\n")

let prop_no_crash =
  QCheck2.Test.make ~name:"http parser: arbitrary bytes never raise" ~count:1000
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun junk ->
      let p = Http.parser_ ~max_head:128 ~max_body:128 () in
      Http.feed p junk;
      let rec drain n =
        if n = 0 then true
        else
          match Http.next p with
          | `Request _ -> drain (n - 1)
          | `Need_more | `Error _ -> true
      in
      drain 8)

let prop_oversized_rejected =
  QCheck2.Test.make
    ~name:"http parser: declared bodies beyond the limit always error"
    ~count:200
    QCheck2.Gen.(int_range 11 1_000_000)
    (fun n ->
      let p = Http.parser_ ~max_body:10 () in
      Http.feed p (Printf.sprintf "POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n" n);
      match Http.next p with `Error Http.Body_too_large -> true | _ -> false)

(* ---------------- router ------------------------------------------ *)

let test_router () =
  let routes =
    [
      Router.route Http.GET "/health" (fun () _ _ -> Http.response 200 "h");
      Router.route Http.GET "/sessions/:id/stats" (fun () _ params ->
          Http.response 200 (Router.param params "id"));
      Router.route Http.POST "/sessions/:id/evaluate" (fun () _ _ ->
          Http.response 200 "e");
    ]
  in
  let request target meth =
    match parse_one (Printf.sprintf "%s %s HTTP/1.1\r\n\r\n" (Http.meth_to_string meth) target) with
    | `Request r -> r
    | _ -> Alcotest.fail "request"
  in
  (match Router.dispatch routes () (request "/sessions/pims/stats" Http.GET) with
  | `Response (pattern, r) ->
      Alcotest.(check string) "pattern" "/sessions/:id/stats" pattern;
      Alcotest.(check string) "captured id" "pims" r.Http.resp_body
  | _ -> Alcotest.fail "should match");
  (match Router.dispatch routes () (request "/nope" Http.GET) with
  | `Not_found -> ()
  | _ -> Alcotest.fail "should be 404");
  (* a GET route answers HEAD (the serializer suppresses the body) *)
  (match Router.dispatch routes () (request "/health" Http.HEAD) with
  | `Response (pattern, r) ->
      Alcotest.(check string) "HEAD falls back to GET" "/health" pattern;
      Alcotest.(check string) "same handler" "h" r.Http.resp_body
  | _ -> Alcotest.fail "HEAD should dispatch to the GET route");
  (* ... and Allow advertises the implied HEAD *)
  match Router.dispatch routes () (request "/health" Http.POST) with
  | `Method_not_allowed [ Http.GET; Http.HEAD ] -> ()
  | _ -> Alcotest.fail "should be 405 allowing GET, HEAD"

(* ---------------- end-to-end over sockets -------------------------- *)

let project =
  {
    Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
    architecture = Casestudies.Pims.architecture;
    mapping = Casestudies.Pims.mapping;
  }

(* a project's three artifacts as XML strings, via a temp-dir round trip *)
let strings_of_project project =
  let dir = Filename.temp_file "sosae" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let f name = Filename.concat dir name in
  Core.Sosae.save_project project ~scenarios:(f "s.xml")
    ~architecture:(f "a.xml") ~mapping:(f "m.xml");
  let read name =
    let ic = open_in_bin (f name) in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let result = (read "s.xml", read "a.xml", read "m.xml") in
  Array.iter (fun n -> Sys.remove (f n)) [| "s.xml"; "a.xml"; "m.xml" |];
  Unix.rmdir dir;
  result

let artifact_strings = lazy (strings_of_project project)

let crash_strings =
  lazy
    (strings_of_project
       {
         Core.Sosae.scenarios = Casestudies.Crash.entity_scenario_set;
         architecture = Casestudies.Crash.entity_architecture;
         mapping = Casestudies.Crash.entity_mapping;
       })

let json_escape s =
  let buf = Buffer.create (String.length s + 16) in
  Jsonlight.to_buffer buf (Jsonlight.String s);
  Buffer.contents buf

let create_body ?(strings = artifact_strings) id =
  let scenarios, architecture, mapping = Lazy.force strings in
  Printf.sprintf
    {|{"id":%s,"scenarios":%s,"architecture":%s,"mapping":%s}|}
    (json_escape id) (json_escape scenarios) (json_escape architecture)
    (json_escape mapping)

let with_daemon ?(config = Server.Daemon.default_config) f =
  let t =
    Server.Daemon.start ~config:{ config with Server.Daemon.port = 0 } ()
  in
  Fun.protect ~finally:(fun () -> Server.Daemon.stop t) (fun () -> f t)

let with_client t f =
  let c = Server.Client.connect ~port:(Server.Daemon.port t) () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

let ok = function
  | Ok (r : Server.Client.response) -> r
  | Error m -> Alcotest.fail ("client: " ^ m)

let body_json (r : Server.Client.response) =
  match Jsonlight.of_string r.Server.Client.body with
  | Ok j -> j
  | Error m -> Alcotest.failf "response body is not JSON (%s): %s" m r.Server.Client.body

let member_exn name json =
  match Jsonlight.member name json with
  | Some j -> j
  | None -> Alcotest.failf "response lacks %S: %s" name (Jsonlight.to_string json)

let expect_error status category (r : Server.Client.response) =
  Alcotest.(check int) (category ^ " status") status r.Server.Client.status;
  let cat =
    body_json r |> member_exn "error" |> member_exn "category"
    |> Jsonlight.string_opt |> Option.get
  in
  Alcotest.(check string) "category" category cat

let test_e2e_health_and_errors () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.get c "/health") in
          Alcotest.(check int) "health 200" 200 r.Server.Client.status;
          Alcotest.(check (option string))
            "status ok" (Some "ok")
            (body_json r |> member_exn "status" |> Jsonlight.string_opt);
          (* one keep-alive connection serves all of these *)
          expect_error 404 "not_found" (ok (Server.Client.get c "/nope"));
          expect_error 404 "not_found"
            (ok (Server.Client.post c "/sessions/ghost/evaluate" ~body:""));
          expect_error 405 "method_not_allowed"
            (ok (Server.Client.post c "/health" ~body:""));
          expect_error 400 "bad_request"
            (ok (Server.Client.post c "/sessions" ~body:"{not json"));
          expect_error 400 "xml_error"
            (ok
               (Server.Client.post c "/sessions"
                  ~body:
                    {|{"id":"x","scenarios":"<scenarioSet","architecture":"","mapping":""}|}));
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "dup")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          expect_error 409 "conflict"
            (ok (Server.Client.post c "/sessions" ~body:(create_body "dup")));
          let r = ok (Server.Client.request c Http.DELETE "/sessions/dup") in
          Alcotest.(check int) "deleted" 200 r.Server.Client.status;
          expect_error 404 "not_found"
            (ok (Server.Client.request c Http.DELETE "/sessions/dup"))))

(* The acceptance bar: the Fig. 4 excise-and-re-evaluate flow over
   HTTP must produce verdicts bit-identical to an in-process
   Session. Stats deltas are compared too: the cache behaves the same
   whether driven over the wire or directly. *)
let test_e2e_fig4_bit_identical () =
  with_daemon (fun t ->
      let expected = Core.Sosae.Session.create project in
      let expected_json () =
        Jsonlight.to_string
          (Walkthrough.Report.json_of_set_result
             (Core.Sosae.Session.evaluate ~jobs:2 expected))
      in
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "pims")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          let evaluate () =
            let r = ok (Server.Client.post c "/sessions/pims/evaluate" ~body:"{}") in
            Alcotest.(check int) "evaluate 200" 200 r.Server.Client.status;
            let json = body_json r in
            ( Jsonlight.to_string (member_exn "result" json),
              member_exn "re_evaluated" json |> Jsonlight.int_opt |> Option.get,
              member_exn "served_from_cache" json |> Jsonlight.int_opt |> Option.get )
          in
          (* initial evaluation: everything is a fresh walk *)
          let result, re_evaluated, from_cache = evaluate () in
          Alcotest.(check string) "initial verdicts identical" (expected_json ()) result;
          Alcotest.(check int) "22 fresh walks" 22 re_evaluated;
          Alcotest.(check int) "nothing cached yet" 0 from_cache;
          (* excise the Loader–Data Access link, as Fig. 4 does *)
          let r =
            ok
              (Server.Client.post c "/sessions/pims/diff"
                 ~body:
                   {|{"ops":[{"op":"excise","from":"data-access","to":"loader"}]}|})
          in
          Alcotest.(check int) "diff 200" 200 r.Server.Client.status;
          Core.Sosae.Session.apply_diff expected
            [
              Adl.Diff.Remove_link
                (let link =
                   List.find
                     (fun (l : Adl.Structure.link) ->
                       let a = l.Adl.Structure.link_from.Adl.Structure.anchor
                       and b = l.Adl.Structure.link_to.Adl.Structure.anchor in
                       (a = "data-access" && b = "loader")
                       || (a = "loader" && b = "data-access"))
                     (Core.Sosae.Session.project expected).Core.Sosae.architecture
                       .Adl.Structure.links
                 in
                 link.Adl.Structure.link_id);
            ];
          (* re-evaluation: the broken verdicts, mostly from cache *)
          let result, re_evaluated, from_cache = evaluate () in
          Alcotest.(check string) "post-excision verdicts identical"
            (expected_json ()) result;
          Alcotest.(check bool) "some re-walked" true (re_evaluated > 0);
          Alcotest.(check bool) "most served from cache" true
            (from_cache > re_evaluated);
          Alcotest.(check bool) "broken architecture detected" true
            (match
               Jsonlight.of_string result |> Result.get_ok
               |> Jsonlight.member "consistent"
             with
            | Some (Jsonlight.Bool b) -> not b
            | _ -> Alcotest.fail "no consistent field");
          (* a sub-suite through the cache matches evaluate_scenario *)
          let r =
            ok
              (Server.Client.post c "/sessions/pims/evaluate"
                 ~body:{|{"scenarios":["get-share-prices"]}|})
          in
          let sub =
            body_json r |> member_exn "results" |> Jsonlight.list_opt |> Option.get
          in
          let direct =
            Walkthrough.Report.json_of_scenario_result
              (Option.get
                 (Core.Sosae.Session.evaluate_scenario expected "get-share-prices"))
          in
          Alcotest.(check string) "sub-suite verdict identical"
            (Jsonlight.to_string direct)
            (Jsonlight.to_string (List.hd sub));
          expect_error 404 "not_found"
            (ok
               (Server.Client.post c "/sessions/pims/evaluate"
                  ~body:{|{"scenarios":["nope"]}|}));
          expect_error 409 "apply_error"
            (ok
               (Server.Client.post c "/sessions/pims/diff"
                  ~body:{|{"ops":[{"op":"excise","from":"data-access","to":"loader"}]}|}))))

let test_e2e_concurrent_clients () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "shared")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status);
      let expected =
        Jsonlight.to_string
          (Walkthrough.Report.json_of_set_result
             (Core.Sosae.Session.evaluate ~jobs:2 (Core.Sosae.Session.create project)))
      in
      let n = 8 in
      let results = Array.make n (Error "unset") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  (try
                     with_client t (fun c ->
                         let r =
                           ok (Server.Client.post c "/sessions/shared/evaluate" ~body:"")
                         in
                         Ok
                           ( r.Server.Client.status,
                             Jsonlight.to_string
                               (member_exn "result" (body_json r)) ))
                   with e -> Error (Printexc.to_string e)))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i result ->
          match result with
          | Error m -> Alcotest.failf "client %d failed: %s" i m
          | Ok (status, result) ->
              Alcotest.(check int) (Printf.sprintf "client %d status" i) 200 status;
              Alcotest.(check string)
                (Printf.sprintf "client %d verdicts" i)
                expected result)
        results;
      (* all 8 calls hit one session: 22 walks total, the rest cache *)
      let stats_body =
        with_client t (fun c -> ok (Server.Client.get c "/sessions/shared/stats"))
      in
      let stats = body_json stats_body |> member_exn "stats" in
      Alcotest.(check (option int))
        "22 walks across all clients" (Some 22)
        (member_exn "evaluations" stats |> Jsonlight.int_opt);
      Alcotest.(check (option int))
        "7x22 cache hits"
        (Some (7 * 22))
        (member_exn "cache_hits" stats |> Jsonlight.int_opt))

(* POST /sessions/:id/simulate over the wire must equal an in-process
   Dsim.Campaign run bit-for-bit: same seed, same campaign parameters
   (mirroring Casestudies.Campaigns.pims_price_feed), same report JSON
   regardless of the jobs fan-out. *)
(* Conditional evaluate: the full-suite response carries a strong ETag
   bound to the architecture revision; If-None-Match answers 304 with
   no body; a diff rotates the etag. *)
let test_e2e_conditional () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "pims")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          let evaluate ?(headers = []) () =
            ok
              (Server.Client.request c ~headers ~body:"{}" Http.POST
                 "/sessions/pims/evaluate")
          in
          let etag_of (r : Server.Client.response) =
            match List.assoc_opt "etag" r.Server.Client.headers with
            | Some e -> e
            | None -> Alcotest.fail "no ETag header on full-suite evaluate"
          in
          let first = evaluate () in
          Alcotest.(check int) "first 200" 200 first.Server.Client.status;
          let etag = etag_of first in
          (* warm repeat without the etag: 200 again, identical verdicts,
             same etag *)
          let second = evaluate () in
          Alcotest.(check int) "second 200" 200 second.Server.Client.status;
          Alcotest.(check string) "etag is stable" etag (etag_of second);
          Alcotest.(check string) "verdicts identical across warm repeat"
            (Jsonlight.to_string (member_exn "result" (body_json first)))
            (Jsonlight.to_string (member_exn "result" (body_json second)));
          (* conditional repeat: 304, no body, etag echoed *)
          let cond = evaluate ~headers:[ ("If-None-Match", etag) ] () in
          Alcotest.(check int) "304" 304 cond.Server.Client.status;
          Alcotest.(check string) "304 has no body" "" cond.Server.Client.body;
          Alcotest.(check string) "304 echoes the etag" etag (etag_of cond);
          Alcotest.(check (option string)) "304 declares Content-Length: 0"
            (Some "0")
            (List.assoc_opt "content-length" cond.Server.Client.headers);
          (* the 304 still counted as a (fully cached) evaluation *)
          let stats =
            body_json (ok (Server.Client.get c "/sessions/pims/stats"))
            |> member_exn "stats"
          in
          Alcotest.(check (option int)) "three evaluate calls hit the cache"
            (Some (2 * 22))
            (member_exn "cache_hits" stats |> Jsonlight.int_opt);
          (* an architecture edit rotates the etag: the stale one misses *)
          let r =
            ok
              (Server.Client.post c "/sessions/pims/diff"
                 ~body:
                   {|{"ops":[{"op":"excise","from":"data-access","to":"loader"}]}|})
          in
          Alcotest.(check int) "diff 200" 200 r.Server.Client.status;
          let after = evaluate ~headers:[ ("If-None-Match", etag) ] () in
          Alcotest.(check int) "stale etag gets 200" 200 after.Server.Client.status;
          Alcotest.(check bool) "fresh etag differs" true (etag_of after <> etag);
          (* sub-suite responses are unconditional: no etag *)
          let sub =
            ok
              (Server.Client.post c "/sessions/pims/evaluate"
                 ~body:{|{"scenarios":["create-portfolio"]}|})
          in
          Alcotest.(check (option string)) "no etag on sub-suites" None
            (List.assoc_opt "etag" sub.Server.Client.headers)))

(* An evaluate that outlives a DELETE + namesake re-create (the
   registry never holds the session lock across mutations, so this
   interleaving is legal) must not poison the new incarnation's
   response cache, must not be served the new incarnation's bytes,
   and its etags must never validate again. *)
let test_registry_incarnation () =
  let registry = Server.Registry.create ~jobs:1 () in
  let add () =
    match Server.Registry.add registry ~id:"s" project with
    | Ok () -> ()
    | Error `Conflict -> Alcotest.fail "unexpected conflict"
  in
  let grab () =
    match Server.Registry.with_session registry "s" (fun s -> s) with
    | Ok s -> s
    | Error `Not_found -> Alcotest.fail "session should exist"
  in
  add ();
  let stale = grab () in
  (* delete + recreate: a fresh incarnation, same name, revision 0 *)
  Alcotest.(check bool) "removed" true (Server.Registry.remove registry "s");
  add ();
  let live = grab () in
  Alcotest.(check bool) "distinct incarnations" true (stale != live);
  (* the in-flight evaluate of the old incarnation stores its body last *)
  let stale_etag =
    Server.Registry.cache_response registry "s" ~session:stale ~revision:0
      ~body:"OLD"
  in
  Alcotest.(check (option (pair string string)))
    "stale body is not cached for the namesake" None
    (Server.Registry.cached_response registry "s" ~session:live ~revision:0);
  Alcotest.(check (option (pair string string)))
    "stale incarnation is no longer served" None
    (Server.Registry.cached_response registry "s" ~session:stale ~revision:0);
  (* the live incarnation caches normally, under a distinct etag *)
  let live_etag =
    Server.Registry.cache_response registry "s" ~session:live ~revision:0
      ~body:"NEW"
  in
  Alcotest.(check bool) "etags never collide across incarnations" true
    (live_etag <> stale_etag);
  match
    Server.Registry.cached_response registry "s" ~session:live ~revision:0
  with
  | Some (etag, body) ->
      Alcotest.(check string) "live etag served" live_etag etag;
      Alcotest.(check string) "live body served" "NEW" body
  | None -> Alcotest.fail "live incarnation should be cached"

(* Batch evaluate: each element of "responses" must be byte-for-byte
   the matching one-shot response body. *)
let test_e2e_batch () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "pims")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          (* warm the session so one-shot and batch see identical stats *)
          ignore (ok (Server.Client.post c "/sessions/pims/evaluate" ~body:"{}"));
          let full =
            ok (Server.Client.post c "/sessions/pims/evaluate" ~body:"{}")
          in
          let sub_body = {|{"scenarios":["create-portfolio","get-share-prices"]}|} in
          let sub =
            ok (Server.Client.post c "/sessions/pims/evaluate" ~body:sub_body)
          in
          let batch =
            ok
              (Server.Client.post c "/sessions/pims/evaluate/batch"
                 ~body:(Printf.sprintf {|{"suites":[{},%s,{}]}|} sub_body))
          in
          Alcotest.(check int) "batch 200" 200 batch.Server.Client.status;
          let responses =
            body_json batch |> member_exn "responses" |> Jsonlight.list_opt
            |> Option.get
          in
          Alcotest.(check int) "three responses" 3 (List.length responses);
          let nth i = Jsonlight.to_string (List.nth responses i) in
          Alcotest.(check string) "batch[0] == one-shot full suite"
            full.Server.Client.body (nth 0);
          Alcotest.(check string) "batch[1] == one-shot sub-suite"
            sub.Server.Client.body (nth 1);
          Alcotest.(check string) "batch[2] == one-shot full suite"
            full.Server.Client.body (nth 2);
          (* error taxonomy matches the one-shot path *)
          expect_error 400 "bad_request"
            (ok (Server.Client.post c "/sessions/pims/evaluate/batch" ~body:"{}"));
          expect_error 404 "not_found"
            (ok
               (Server.Client.post c "/sessions/pims/evaluate/batch"
                  ~body:{|{"suites":[{"scenarios":["nope"]}]}|}))))

(* The per-connection request cap: the capping response announces
   Connection: close and the server hangs up after it. *)
let test_e2e_request_cap () =
  let config = { Server.Daemon.default_config with port = 0; max_requests = 3 } in
  with_daemon ~config (fun t ->
      with_client t (fun c ->
          let r1 = ok (Server.Client.get c "/health") in
          Alcotest.(check (option string)) "first response keeps alive" None
            (List.assoc_opt "connection" r1.Server.Client.headers);
          let _ = ok (Server.Client.get c "/health") in
          let r3 = ok (Server.Client.get c "/health") in
          Alcotest.(check int) "capping response still 200" 200
            r3.Server.Client.status;
          Alcotest.(check (option string)) "capping response closes"
            (Some "close")
            (List.assoc_opt "connection" r3.Server.Client.headers);
          (* the connection is gone: the next request on it fails *)
          match Server.Client.get c "/health" with
          | Error _ -> ()
          | Ok r ->
              Alcotest.failf "expected a dead connection, got %d"
                r.Server.Client.status))

(* HEAD is answered from the GET route: same status and headers
   (Content-Length included), no body. *)
let test_e2e_head () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let get = ok (Server.Client.get c "/health") in
          let head = ok (Server.Client.request c Http.HEAD "/health") in
          Alcotest.(check int) "HEAD 200" 200 head.Server.Client.status;
          Alcotest.(check string) "no body" "" head.Server.Client.body;
          Alcotest.(check (option string)) "Content-Length names the GET body"
            (Some (string_of_int (String.length get.Server.Client.body)))
            (List.assoc_opt "content-length" head.Server.Client.headers);
          (* the connection is still usable after the body-less response *)
          let r = ok (Server.Client.get c "/health") in
          Alcotest.(check int) "still keep-alive" 200 r.Server.Client.status))

(* A persistent client handle survives the server's request cap by
   reconnecting transparently, and composes with_retry's backoff. *)
let test_client_persistent () =
  let config = { Server.Daemon.default_config with port = 0; max_requests = 2 } in
  with_daemon ~config (fun t ->
      let p =
        Server.Client.persistent ~sleep:(fun _ -> ()) (fun () ->
            Server.Client.connect ~port:(Server.Daemon.port t) ())
      in
      Fun.protect
        ~finally:(fun () -> Server.Client.persistent_close p)
        (fun () ->
          (* 5 calls across a 2-request cap: the handle reconnects at
             each announced close, and every call succeeds *)
          for i = 1 to 5 do
            let r = ok (Server.Client.call p (fun c -> Server.Client.get c "/health")) in
            Alcotest.(check int) (Printf.sprintf "call %d" i) 200
              r.Server.Client.status
          done))

let test_e2e_simulate () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "sim")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          let behavior =
            Statechart.Bundle.to_string
              (Statechart.Bundle.make ~id:"price-feed"
                 Casestudies.Campaigns.price_feed_charts)
          in
          let body ~jobs =
            Printf.sprintf
              {|{"behavior":%s,
                 "stimuli":[{"component":"master-controller","trigger":"user-initiates"}],
                 "goal":{"component":"remote-price-db","payload":"fetch-prices"},
                 "faults":[{"kind":"crash","node":"remote-price-db",
                            "at":{"lo":0,"hi":3},"downtime":{"lo":1,"hi":5}}],
                 "trials":120,"seed":9,"horizon":10,"jitter":0.25,"loss":0.05,
                 "jobs":%d}|}
              (json_escape behavior) jobs
          in
          let simulate ~jobs =
            let r = ok (Server.Client.post c "/sessions/sim/simulate" ~body:(body ~jobs)) in
            Alcotest.(check int) "simulate 200" 200 r.Server.Client.status;
            let json = body_json r in
            Alcotest.(check (option int))
              "trials echoed" (Some 120)
              (member_exn "trials" json |> Jsonlight.int_opt);
            Jsonlight.to_string (member_exn "report" json)
          in
          let expected =
            Jsonlight.to_string
              (Dsim.Stats.to_json
                 (Dsim.Campaign.report ~jobs:2 ~seed:9 ~trials:120
                    (Casestudies.Campaigns.pims_price_feed ~loss:0.05 ())))
          in
          Alcotest.(check string) "wire report = in-process campaign" expected
            (simulate ~jobs:2);
          Alcotest.(check string) "jobs fan-out does not change the report" expected
            (simulate ~jobs:4);
          (* request validation *)
          expect_error 400 "xml_error"
            (ok
               (Server.Client.post c "/sessions/sim/simulate"
                  ~body:
                    {|{"behavior":"<archBehavior","stimuli":[{"component":"x","trigger":"y"}],"goal":{"component":"x","payload":"y"}}|}));
          expect_error 400 "bad_request"
            (ok
               (Server.Client.post c "/sessions/sim/simulate"
                  ~body:(Printf.sprintf {|{"behavior":%s}|} (json_escape behavior))));
          expect_error 404 "not_found"
            (ok (Server.Client.post c "/sessions/ghost/simulate" ~body:(body ~jobs:1)))))

let test_e2e_robustness () =
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.read_timeout = 0.3;
      max_body = 2048;
      workers = 2;
    }
  in
  with_daemon ~config (fun t ->
      (* oversized body → 413 with the payload_too_large category *)
      with_client t (fun c ->
          expect_error 413 "payload_too_large"
            (ok
               (Server.Client.post c "/sessions"
                  ~body:(String.make 4096 'x'))));
      (* torn request + timeout → 408, connection closed *)
      (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect fd
         (Unix.ADDR_INET
            (Unix.inet_addr_of_string "127.0.0.1", Server.Daemon.port t));
       let partial = "POST /sessions HTTP/1.1\r\nContent-Le" in
       ignore (Unix.write_substring fd partial 0 (String.length partial));
       let buf = Bytes.create 1024 in
       let n = Unix.read fd buf 0 1024 in
       let response = Bytes.sub_string buf 0 n in
       Unix.close fd;
       Alcotest.(check bool) "408 on mid-request timeout" true
         (String.length response >= 12 && String.sub response 9 3 = "408"));
      (* unparseable request line → 400 and close *)
      with_client t (fun c ->
          match Server.Client.request c (Http.Other "NO SUCH") "/" with
          | Ok r -> Alcotest.(check int) "400 on garbage" 400 r.Server.Client.status
          | Error m -> Alcotest.fail m);
      (* the daemon survives all of the above *)
      with_client t (fun c ->
          Alcotest.(check int) "still healthy" 200
            (ok (Server.Client.get c "/health")).Server.Client.status))

let test_e2e_unix_socket () =
  let path = Filename.temp_file "sosae" ".sock" in
  Sys.remove path;
  let config =
    { Server.Daemon.default_config with Server.Daemon.unix_path = Some path }
  in
  with_daemon ~config (fun _t ->
      let c = Server.Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          Alcotest.(check int) "health over unix socket" 200
            (ok (Server.Client.get c "/health")).Server.Client.status));
  Alcotest.(check bool) "socket file removed on stop" false (Sys.file_exists path)

let test_stop_idempotent () =
  let t = Server.Daemon.start ~config:{ Server.Daemon.default_config with Server.Daemon.port = 0 } () in
  Server.Daemon.stop t;
  Server.Daemon.stop t

(* ---------------- Client retries ---------------------------------- *)

let test_retry_schedule () =
  let p = Server.Client.default_policy in
  let s1 = Server.Client.backoff_schedule ~seed:7 p in
  let s2 = Server.Client.backoff_schedule ~seed:7 p in
  Alcotest.(check (list (float 1e-12))) "same seed, same schedule" s1 s2;
  Alcotest.(check int) "one delay per retry" (p.Server.Client.max_attempts - 1)
    (List.length s1);
  List.iteri
    (fun i d ->
      let raw =
        p.Server.Client.base_delay
        *. (p.Server.Client.multiplier ** float_of_int i)
      in
      let cap = Float.min p.Server.Client.max_delay raw in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in jitter band" i)
        true
        (d <= cap && d >= cap *. (1.0 -. p.Server.Client.jitter)))
    s1;
  Alcotest.(check bool) "different seed, different jitter" true
    (Server.Client.backoff_schedule ~seed:8 p <> s1);
  Alcotest.(check bool) "408/429/503 retryable" true
    (List.for_all Server.Client.retryable_status [ 408; 429; 503 ]);
  Alcotest.(check bool) "200/404/500 not" false
    (List.exists Server.Client.retryable_status [ 200; 404; 500 ])

let test_retry_reconnect () =
  (* connect refused every time: all attempts burn, the recorded
     sleeps are exactly the seeded schedule *)
  let policy =
    { Server.Client.default_policy with Server.Client.max_attempts = 4 }
  in
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  (match
     Server.Client.with_retry ~policy ~seed:3 ~sleep
       ~connect:(fun () ->
         raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")))
       (fun _ -> Alcotest.fail "no connection to use")
   with
  | Ok _ -> Alcotest.fail "cannot succeed without a connection"
  | Error _ -> ());
  Alcotest.(check (list (float 1e-12))) "slept the schedule"
    (Server.Client.backoff_schedule ~seed:3 policy)
    (List.rev !slept);
  with_daemon (fun t ->
      let connect () = Server.Client.connect ~port:(Server.Daemon.port t) () in
      (* a retryable status is retried on a fresh connection... *)
      let attempts = ref 0 and slept = ref 0 in
      let r =
        Server.Client.with_retry ~seed:0 ~sleep:(fun _ -> incr slept) ~connect
          (fun c ->
            incr attempts;
            if !attempts = 1 then
              Ok { Server.Client.status = 503; headers = []; body = "" }
            else Server.Client.get c "/health")
      in
      Alcotest.(check int) "503 then 200" 200 (ok r).Server.Client.status;
      Alcotest.(check int) "two attempts" 2 !attempts;
      Alcotest.(check int) "one backoff" 1 !slept;
      (* ...but a non-retryable failure status returns immediately *)
      let attempts = ref 0 and slept = ref 0 in
      let r =
        Server.Client.with_retry ~seed:0 ~sleep:(fun _ -> incr slept) ~connect
          (fun _ ->
            incr attempts;
            Ok { Server.Client.status = 404; headers = []; body = "" })
      in
      Alcotest.(check int) "404 through" 404 (ok r).Server.Client.status;
      Alcotest.(check int) "single attempt" 1 !attempts;
      Alcotest.(check int) "no sleep" 0 !slept)

(* ---------------- Durability ------------------------------------- *)

let temp_dir () =
  let path = Filename.temp_file "sosae-data" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let file_size path = (Unix.stat path).Unix.st_size

let excise_auth_body =
  {|{"ops":[{"op":"remove_link","id":"authentication.io_ui-bus->ui-bus.io_authentication"}]}|}

let links_of_stats stats =
  stats |> member_exn "architecture" |> member_exn "links"
  |> Jsonlight.int_opt |> Option.get

(* Clean-restart durability: everything acknowledged before a SIGTERM
   drain — creates, an applied diff, a removal — is there after the
   next boot, and the drain checkpointed the journal into a
   snapshot. *)
let test_e2e_persistence_restart () =
  with_temp_dir (fun dir ->
      let config =
        {
          Server.Daemon.default_config with
          Server.Daemon.data_dir = Some dir;
          fsync = Store.Journal.Never;
        }
      in
      let before =
        with_daemon ~config (fun t ->
            with_client t (fun c ->
                List.iter
                  (fun id ->
                    Alcotest.(check int) ("create " ^ id) 201
                      (ok (Server.Client.post c "/sessions" ~body:(create_body id)))
                        .Server.Client.status)
                  [ "p1"; "p2"; "doomed" ];
                Alcotest.(check int) "diff applied" 200
                  (ok (Server.Client.post c "/sessions/p1/diff" ~body:excise_auth_body))
                    .Server.Client.status;
                Alcotest.(check int) "remove" 200
                  (ok (Server.Client.request c Http.DELETE "/sessions/doomed"))
                    .Server.Client.status;
                let journal =
                  body_json (ok (Server.Client.get c "/metrics"))
                  |> member_exn "journal"
                in
                Alcotest.(check bool) "journal counters live" true
                  ((journal |> member_exn "records" |> Jsonlight.int_opt |> Option.get)
                  >= 5);
                (ok (Server.Client.get c "/sessions")).Server.Client.body))
      in
      Alcotest.(check bool) "drain wrote a snapshot" true
        (file_size (Filename.concat dir "snapshot.log") > 0);
      Alcotest.(check int) "drain emptied the journal" 0
        (file_size (Filename.concat dir "wal.log"));
      with_daemon ~config (fun t ->
          with_client t (fun c ->
              Alcotest.(check string) "sessions identical after restart" before
                (ok (Server.Client.get c "/sessions")).Server.Client.body;
              Alcotest.(check int) "diff survived (16 -> 15 links)" 15
                (links_of_stats (body_json (ok (Server.Client.get c "/sessions/p1/stats"))));
              let recovery =
                body_json (ok (Server.Client.get c "/metrics"))
                |> member_exn "journal" |> member_exn "recovery"
              in
              Alcotest.(check (option int)) "recovered session count" (Some 2)
                (recovery |> member_exn "sessions" |> Jsonlight.int_opt))));
  (* without --data-dir, /metrics must not grow a journal section *)
  with_daemon (fun t ->
      with_client t (fun c ->
          Alcotest.(check bool) "no journal key when ephemeral" true
            (body_json (ok (Server.Client.get c "/metrics"))
             |> Jsonlight.member "journal" = None)))

(* ---------------- SIGKILL the daemon mid-load --------------------- *)

let sosae = "../bin/sosae.exe"

(* Spawn `sosae serve` and parse the bound port off its stdout
   banner ("sosae serve: listening on 127.0.0.1:PORT"). *)
let spawn_serve args =
  let out_r, out_w = Unix.pipe () in
  let argv = Array.of_list (sosae :: "serve" :: args) in
  let pid = Unix.create_process sosae argv Unix.stdin out_w Unix.stderr in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let line = try input_line ic with End_of_file -> "" in
  match String.rindex_opt line ':' with
  | Some i -> (
      let tail = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt (String.trim tail) with
      | Some port -> (pid, ic, port)
      | None ->
          Unix.kill pid Sys.sigkill;
          Alcotest.failf "no port in banner %S" line)
  | None ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      Alcotest.failf "no banner from serve (%S)" line

let session_ids body =
  match Jsonlight.member "sessions" body with
  | Some (Jsonlight.List sessions) ->
      List.filter_map
        (fun s ->
          Option.bind (Jsonlight.member "id" s) Jsonlight.string_opt)
        sessions
  | _ -> []

(* The crash case the journal exists for: a loader hammers POST
   /sessions while the daemon is SIGKILLed under it — no drain, no
   checkpoint. Every create acknowledged with a 201 must exist after
   a restart on the same data dir; the restarted daemon is reached
   with [with_retry], which rides out the connect-refused window. *)
let test_e2e_sigkill_mid_load () =
  with_temp_dir (fun dir ->
      let pid, ic, port =
        spawn_serve [ "--port"; "0"; "--data-dir"; dir; "--fsync"; "always" ]
      in
      (* load the PIMS and CRASH bundles and evaluate both: the
         verdicts after the crash must be bit-identical to these *)
      let pre_pims, pre_crash =
        let c = Server.Client.connect ~port () in
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () ->
            Alcotest.(check int) "pims created" 201
              (ok (Server.Client.post c "/sessions" ~body:(create_body "pims")))
                .Server.Client.status;
            Alcotest.(check int) "crash created" 201
              (ok
                 (Server.Client.post c "/sessions"
                    ~body:(create_body ~strings:crash_strings "crash")))
                .Server.Client.status;
            ( (ok (Server.Client.post c "/sessions/pims/evaluate" ~body:""))
                .Server.Client.body,
              (ok (Server.Client.post c "/sessions/crash/evaluate" ~body:""))
                .Server.Client.body ))
      in
      let acked = ref [] in
      let loader =
        Thread.create
          (fun () ->
            let rec go i =
              if i < 500 then
                match
                  let c = Server.Client.connect ~port () in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      Server.Client.post c "/sessions"
                        ~body:(create_body (Printf.sprintf "s%03d" i)))
                with
                | Ok { Server.Client.status = 201; _ } ->
                    acked := Printf.sprintf "s%03d" i :: !acked;
                    go (i + 1)
                | Ok _ | Error _ -> ()
                | exception _ -> ()
            in
            go 0)
          ()
      in
      Thread.delay 0.4;
      Unix.kill pid Sys.sigkill;
      Thread.join loader;
      ignore (Unix.waitpid [] pid);
      close_in ic;
      Alcotest.(check bool) "some creates were acknowledged" true (!acked <> []);
      (* restart on the same port while a retrying client is already
         knocking: with_retry absorbs the refused connections *)
      let restarted = ref None in
      let restarter =
        Thread.create
          (fun () ->
            Thread.delay 0.3;
            restarted :=
              Some
                (spawn_serve
                   [
                     "--port"; string_of_int port; "--data-dir"; dir;
                     "--fsync"; "always";
                   ]))
          ()
      in
      let result =
        Server.Client.with_retry
          ~policy:
            {
              Server.Client.default_policy with
              Server.Client.max_attempts = 10;
              base_delay = 0.1;
            }
          ~connect:(fun () -> Server.Client.connect ~port ())
          (fun c -> Server.Client.get c "/sessions")
      in
      Thread.join restarter;
      Fun.protect
        ~finally:(fun () ->
          match !restarted with
          | Some (pid2, ic2, _) ->
              (try Unix.kill pid2 Sys.sigterm with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid2);
              close_in ic2
          | None -> ())
        (fun () ->
          let r = ok result in
          Alcotest.(check int) "sessions listed after crash" 200
            r.Server.Client.status;
          let recovered = session_ids (body_json r) in
          List.iter
            (fun id ->
              Alcotest.(check bool) ("acknowledged " ^ id ^ " survived") true
                (List.mem id recovered))
            ("pims" :: "crash" :: !acked);
          (* the recovered sessions evaluate to bit-identical verdicts
             (both runs are the session's first: cold cache each time) *)
          let evaluate id =
            let c = Server.Client.connect ~port () in
            Fun.protect
              ~finally:(fun () -> Server.Client.close c)
              (fun () ->
                (ok
                   (Server.Client.post c
                      (Printf.sprintf "/sessions/%s/evaluate" id)
                      ~body:""))
                  .Server.Client.body)
          in
          Alcotest.(check string) "pims verdicts bit-identical" pre_pims
            (evaluate "pims");
          Alcotest.(check string) "crash verdicts bit-identical" pre_crash
            (evaluate "crash")))

(* ---------------- Group commit at the registry level --------------- *)

(* 8 concurrent mutators through the registry's stage/await path: the
   journal must recover every acknowledged session, group stats must
   account for every append, and batching must have actually shared
   fsyncs (the accumulation window makes at least one multi-writer
   batch all but certain, and any batch at all proves the sharing). *)
let test_registry_group_concurrent_recovery () =
  with_temp_dir (fun dir ->
      let writers = 8 and per_writer = 3 in
      let persist, _ =
        Server.Persist.open_ ~fsync:Store.Journal.Always
          ~group:{ Store.Journal.Group.window = 0.002; max_batch = 64 }
          dir
      in
      let registry = Server.Registry.create ~persist () in
      let threads =
        List.init writers (fun w ->
            Thread.create
              (fun () ->
                for i = 0 to per_writer - 1 do
                  match
                    Server.Registry.add registry
                      ~id:(Printf.sprintf "w%d-s%d" w i)
                      project
                  with
                  | Ok () -> ()
                  | Error `Conflict -> Alcotest.fail "conflict on distinct ids"
                done)
              ())
      in
      List.iter Thread.join threads;
      let total = writers * per_writer in
      let g =
        match Server.Persist.group_stats persist with
        | Some g -> g
        | None -> Alcotest.fail "group stats missing"
      in
      Alcotest.(check int) "every append released by a batch" total
        g.Store.Journal.Group.batched_appends;
      Alcotest.(check int) "saved accounts the batching"
        (total - g.Store.Journal.Group.batches)
        g.Store.Journal.Group.fsyncs_saved;
      let before = Server.Registry.ids registry in
      Server.Persist.close persist;
      (* recover on a fresh registry: every acknowledged add is there *)
      let persist2, (recovery : Server.Persist.recovery) =
        Server.Persist.open_ ~fsync:Store.Journal.Always dir
      in
      let registry2 = Server.Registry.create ~persist:persist2 () in
      ignore (Server.Registry.recover registry2 recovery.Server.Persist.mutations);
      Alcotest.(check (list string)) "recovered ids identical" before
        (Server.Registry.ids registry2);
      Server.Persist.close persist2)

(* The "journal" metrics object must not grow a group_commit member
   until a batch has actually completed — enabling the barrier on an
   idle server leaves /metrics byte-identical. *)
let test_metrics_group_idle () =
  let render m = Jsonlight.to_string (Server.Metrics.to_json m ~extra:[]) in
  let journal m =
    Server.Metrics.set_journal m ~records:3 ~bytes:120 ~fsyncs:2 ~compactions:1
  in
  let m1 = Server.Metrics.create () in
  journal m1;
  let m2 = Server.Metrics.create () in
  journal m2;
  let hist () = Array.make (Array.length Store.Journal.Group.hist_bounds + 1) 0 in
  Server.Metrics.set_group_commit m2
    {
      Store.Journal.Group.batches = 0;
      batched_appends = 0;
      fsyncs_saved = 0;
      largest_batch = 0;
      hist = hist ();
    };
  Alcotest.(check string) "idle group commit leaves metrics byte-identical"
    (render m1) (render m2);
  let h = hist () in
  h.(1) <- 2;
  Server.Metrics.set_group_commit m2
    {
      Store.Journal.Group.batches = 2;
      batched_appends = 4;
      fsyncs_saved = 2;
      largest_batch = 2;
      hist = h;
    };
  let group =
    body_json
      { Server.Client.status = 200; headers = []; body = render m2 }
    |> member_exn "journal" |> member_exn "group_commit"
  in
  Alcotest.(check (option int)) "batches rendered" (Some 2)
    (group |> member_exn "batches" |> Jsonlight.int_opt);
  Alcotest.(check (option int)) "fsyncs_saved rendered" (Some 2)
    (group |> member_exn "fsyncs_saved" |> Jsonlight.int_opt)

(* SIGKILL while the maintenance thread is compacting in the
   background: a tiny --compact-threshold makes the loader trip a
   rotation every couple of creates, so the kill lands around (and
   with good odds inside) a snapshot/rotation — recovery must still
   produce every acknowledged session. *)
let test_e2e_sigkill_during_compaction () =
  with_temp_dir (fun dir ->
      let pid, ic, port =
        spawn_serve
          [
            "--port"; "0"; "--data-dir"; dir; "--fsync"; "always";
            "--compact-threshold"; "60000"; "--group-commit-window"; "1";
          ]
      in
      let acked = ref [] in
      let loader =
        Thread.create
          (fun () ->
            let rec go i =
              if i < 300 then
                match
                  let c = Server.Client.connect ~port () in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      Server.Client.post c "/sessions"
                        ~body:(create_body (Printf.sprintf "c%03d" i)))
                with
                | Ok { Server.Client.status = 201; _ } ->
                    acked := Printf.sprintf "c%03d" i :: !acked;
                    go (i + 1)
                | Ok _ | Error _ -> ()
                | exception _ -> ()
            in
            go 0)
          ()
      in
      Thread.delay 0.6;
      Unix.kill pid Sys.sigkill;
      Thread.join loader;
      ignore (Unix.waitpid [] pid);
      close_in ic;
      Alcotest.(check bool) "some creates were acknowledged" true (!acked <> []);
      (* each create journals ~38 KB against a 60 KB threshold: the
         maintenance thread must have compacted at least once *)
      Alcotest.(check bool) "background compaction produced a snapshot" true
        (Sys.file_exists (Filename.concat dir "snapshot.log")
        && file_size (Filename.concat dir "snapshot.log") > 0);
      let pid2, ic2, port2 =
        spawn_serve
          [
            "--port"; "0"; "--data-dir"; dir; "--fsync"; "always";
            "--compact-threshold"; "60000";
          ]
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid2 Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid2);
          close_in ic2)
        (fun () ->
          let c = Server.Client.connect ~port:port2 () in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let r = ok (Server.Client.get c "/sessions") in
              Alcotest.(check int) "sessions listed after crash" 200
                r.Server.Client.status;
              let recovered = session_ids (body_json r) in
              List.iter
                (fun id ->
                  Alcotest.(check bool) ("acknowledged " ^ id ^ " survived") true
                    (List.mem id recovered))
                !acked;
              let recovery =
                body_json (ok (Server.Client.get c "/metrics"))
                |> member_exn "journal" |> member_exn "recovery"
              in
              Alcotest.(check bool) "recovery reported sessions" true
                ((recovery |> member_exn "sessions" |> Jsonlight.int_opt
                 |> Option.get)
                >= List.length !acked))))

(* ---------------- Replication ------------------------------------- *)

let with_replicated f =
  with_temp_dir (fun dir ->
      let config =
        {
          Server.Daemon.default_config with
          Server.Daemon.data_dir = Some dir;
          fsync = Store.Journal.Never;
        }
      in
      with_daemon ~config (fun primary ->
          let replica_config =
            {
              Server.Daemon.default_config with
              Server.Daemon.replica_of =
                Some ("127.0.0.1", Server.Daemon.port primary);
              replica_poll = 0.005;
            }
          in
          with_daemon ~config:replica_config (fun replica -> f primary replica)))

let wait_replica ?(timeout = 10.0) replica ~seq =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match with_client replica (fun c -> Server.Client.replication c) with
    | Ok r when r.Server.Client.applied_seq >= seq && r.Server.Client.lag = 0L ->
        ()
    | _ ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "replica not caught up to seq %Ld" seq
        else begin
          Thread.delay 0.01;
          go ()
        end
  in
  go ()

(* The tentpole, in-process: a replica applies the primary's shipped
   journal, serves reads bit-identical to the primary, rejects
   mutations with a structured role error, and a replica-aware client
   follows the advertised primary. *)
let test_e2e_replication () =
  with_replicated (fun primary replica ->
      let primary_addr =
        Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port primary)
      in
      with_client primary (fun pc ->
          Alcotest.(check int) "created on primary" 201
            (ok (Server.Client.post pc "/sessions" ~body:(create_body "pims")))
              .Server.Client.status;
          (match Server.Client.replication pc with
          | Ok r ->
              Alcotest.(check string) "primary role" "primary"
                r.Server.Client.role;
              Alcotest.(check bool) "primary has no upstream" true
                (r.Server.Client.primary = None)
          | Error m -> Alcotest.fail m);
          wait_replica replica ~seq:1L;
          with_client replica (fun rc ->
              (match Server.Client.replication rc with
              | Ok r ->
                  Alcotest.(check string) "replica role" "replica"
                    r.Server.Client.role;
                  Alcotest.(check (option string)) "primary advertised"
                    (Some primary_addr) r.Server.Client.primary
              | Error m -> Alcotest.fail m);
              (* the replication status is mirrored into /metrics *)
              let repl =
                body_json (ok (Server.Client.get rc "/metrics"))
                |> member_exn "replication"
              in
              Alcotest.(check (option string)) "metrics role" (Some "replica")
                (repl |> member_exn "role" |> Jsonlight.string_opt);
              (* reads are served locally, bit-identical to the primary *)
              let evaluate c =
                (ok (Server.Client.post c "/sessions/pims/evaluate" ~body:""))
                  .Server.Client.body
              in
              Alcotest.(check string) "evaluate bit-identical" (evaluate pc)
                (evaluate rc);
              (* mutations answer 421 read_only naming the primary *)
              let r =
                ok (Server.Client.post rc "/sessions" ~body:(create_body "nope"))
              in
              expect_error 421 "read_only" r;
              Alcotest.(check (option string)) "client recognizes the redirect"
                (Some primary_addr)
                (Server.Client.read_only_primary r);
              Alcotest.(check bool) "retry-after present" true
                (List.mem_assoc "retry-after" r.Server.Client.headers);
              expect_error 421 "read_only"
                (ok (Server.Client.post rc "/sessions/pims/diff" ~body:"{}"));
              expect_error 421 "read_only"
                (ok (Server.Client.request rc Http.DELETE "/sessions/pims"));
              (* a diff lands on the primary and ships to the replica;
                 both sides then evaluate to the same bytes again *)
              Alcotest.(check int) "diff on primary" 200
                (ok
                   (Server.Client.post pc "/sessions/pims/diff"
                      ~body:
                        {|{"ops":[{"op":"excise","from":"data-access","to":"loader"}]}|}))
                  .Server.Client.status;
              wait_replica replica ~seq:2L;
              Alcotest.(check string) "post-diff evaluate bit-identical"
                (evaluate pc) (evaluate rc);
              (* diff/preview is a read: the replica serves it *)
              let preview =
                ok
                  (Server.Client.post rc "/sessions/pims/diff/preview"
                     ~body:
                       {|{"ops":[{"op":"excise","from":"authentication","to":"ui-bus"}]}|})
              in
              Alcotest.(check int) "preview on replica" 200
                preview.Server.Client.status;
              Alcotest.(check (option int)) "preview expands the ops" (Some 1)
                (body_json preview |> member_exn "would_apply"
               |> Jsonlight.int_opt));
          (* a follow_primary client turns the replica's 421 into a
             reconnect to the advertised primary *)
          let r =
            ok
              (Server.Client.with_retry ~follow_primary:true
                 ~connect:(fun () ->
                   Server.Client.connect ~port:(Server.Daemon.port replica) ())
                 (fun c ->
                   Server.Client.post c "/sessions"
                     ~body:(create_body "via-replica")))
          in
          Alcotest.(check int) "redirected create landed" 201
            r.Server.Client.status;
          wait_replica replica ~seq:3L;
          with_client replica (fun rc ->
              Alcotest.(check bool) "redirected create shipped back" true
                (List.mem "via-replica"
                   (session_ids
                      (body_json (ok (Server.Client.get rc "/sessions"))))));
          (* removals replicate too *)
          Alcotest.(check int) "delete on primary" 200
            (ok (Server.Client.request pc Http.DELETE "/sessions/pims"))
              .Server.Client.status;
          wait_replica replica ~seq:4L;
          with_client replica (fun rc ->
              expect_error 404 "not_found"
                (ok (Server.Client.get rc "/sessions/pims/stats")))))

(* A replica that connects after the primary compacted its journal
   away must bootstrap from the snapshot (the reset batch) and still
   evaluate bit-identically. *)
let test_e2e_replica_snapshot_bootstrap () =
  with_temp_dir (fun dir ->
      let config =
        {
          Server.Daemon.default_config with
          Server.Daemon.data_dir = Some dir;
          fsync = Store.Journal.Never;
        }
      in
      (* boot, create, drain: the drain checkpoints, so the state now
         lives only in the snapshot and the journal is empty *)
      let expected =
        with_daemon ~config (fun t ->
            with_client t (fun c ->
                Alcotest.(check int) "created" 201
                  (ok (Server.Client.post c "/sessions" ~body:(create_body "pims")))
                    .Server.Client.status;
                (ok (Server.Client.post c "/sessions/pims/evaluate" ~body:""))
                  .Server.Client.body))
      in
      with_daemon ~config (fun primary ->
          let replica_config =
            {
              Server.Daemon.default_config with
              Server.Daemon.replica_of =
                Some ("127.0.0.1", Server.Daemon.port primary);
              replica_poll = 0.005;
            }
          in
          with_daemon ~config:replica_config (fun replica ->
              wait_replica replica ~seq:1L;
              with_client replica (fun rc ->
                  Alcotest.(check string) "bootstrapped evaluate bit-identical"
                    expected
                    (ok
                       (Server.Client.post rc "/sessions/pims/evaluate"
                          ~body:""))
                      .Server.Client.body))))

(* Regression for the apply-loop locking: reads on the replica —
   /sessions, /metrics, evaluates — must keep answering (never an
   error, never a 5xx) while the apply loop chews through a stream of
   creates and removals. *)
let test_replica_apply_read_interleave () =
  with_replicated (fun primary replica ->
      let stop = Atomic.make false in
      let failures = ref 0 in
      let reader =
        Thread.create
          (fun () ->
            let rport = Server.Daemon.port replica in
            while not (Atomic.get stop) do
              let c = Server.Client.connect ~port:rport () in
              Fun.protect
                ~finally:(fun () -> Server.Client.close c)
                (fun () ->
                  let check = function
                    | Ok { Server.Client.status; _ } when status < 500 -> ()
                    | Ok _ | Error _ -> incr failures
                  in
                  check (Server.Client.get c "/sessions");
                  check (Server.Client.get c "/metrics");
                  (* i01 is never removed; 404 just means it has not
                     shipped yet *)
                  check (Server.Client.post c "/sessions/i01/evaluate" ~body:""))
            done)
          ()
      in
      with_client primary (fun pc ->
          for i = 0 to 14 do
            let id = Printf.sprintf "i%02d" i in
            Alcotest.(check int) ("create " ^ id) 201
              (ok (Server.Client.post pc "/sessions" ~body:(create_body id)))
                .Server.Client.status;
            if i mod 3 = 0 then
              Alcotest.(check int) ("remove " ^ id) 200
                (ok (Server.Client.request pc Http.DELETE ("/sessions/" ^ id)))
                  .Server.Client.status
          done);
      (* 15 creates + 5 removes *)
      wait_replica replica ~seq:20L;
      Atomic.set stop true;
      Thread.join reader;
      Alcotest.(check int) "no read failed during apply" 0 !failures;
      let ids t =
        with_client t (fun c ->
            session_ids (body_json (ok (Server.Client.get c "/sessions"))))
      in
      Alcotest.(check (list string)) "replica converged to primary"
        (ids primary) (ids replica))

let test_apply_shipped_reset () =
  with_temp_dir (fun dir ->
      (* a real reset batch: create on a journaling primary, compact,
         then ship from before the snapshot base *)
      let persist, _ = Server.Persist.open_ ~fsync:Store.Journal.Never dir in
      let primary = Server.Registry.create ~persist () in
      (match Server.Registry.add primary ~id:"fresh" project with
      | Ok () -> ()
      | Error `Conflict -> Alcotest.fail "conflict");
      Server.Registry.checkpoint primary;
      let batch = Server.Persist.ship persist ~after:0L in
      Alcotest.(check bool) "stranded cursor gets a reset batch" true
        batch.Store.Ship.reset;
      let replica = Server.Registry.create () in
      (match Server.Registry.add replica ~id:"stale" project with
      | Ok () -> ()
      | Error `Conflict -> Alcotest.fail "conflict");
      let stats, last =
        match
          Server.Registry.apply_shipped replica ~reset:batch.Store.Ship.reset
            batch.Store.Ship.data
        with
        | Ok v -> v
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check int) "applied" 1 stats.Server.Registry.applied;
      Alcotest.(check int64) "frontier at the snapshot's coverage" 1L last;
      Alcotest.(check (list string)) "reset replaced the state" [ "fresh" ]
        (Server.Registry.ids replica);
      Server.Persist.close persist)

(* The replication prefix property: a replica that has applied ANY
   prefix of the shipped mutation stream — incrementally, batch by
   batch, through the serving-path locks — is indistinguishable
   (session ids and full verdict JSON) from a primary recovered from
   the same journal prefix in one shot. *)
let remove_first_link_ops (s : Core.Sosae.Session.t) =
  match
    (Core.Sosae.Session.project s).Core.Sosae.architecture
      .Adl.Structure.links
  with
  | [] -> []
  | l :: _ -> [ Adl.Diff.Remove_link l.Adl.Structure.link_id ]

(* The comparable essence of a registry: every session id paired with
   the full verdict JSON its evaluate produces. Two registries with
   equal dumps are indistinguishable to a reader. *)
let dump_registry registry =
  List.map
    (fun id ->
      ( id,
        match
          Server.Registry.with_session registry id (fun s ->
              Jsonlight.to_string
                (Walkthrough.Report.json_of_set_result
                   (Core.Sosae.Session.evaluate ~jobs:2 s)))
        with
        | Ok verdicts -> verdicts
        | Error `Not_found -> "<gone>" ))
    (Server.Registry.ids registry)

let prop_replica_prefix_equivalence =
  let gen = QCheck2.Gen.(list_size (int_range 1 4) (int_range 0 2)) in
  QCheck2.Test.make
    ~name:"replication: any applied prefix equals a recovered primary"
    ~count:3 gen (fun ops ->
      with_temp_dir (fun dir ->
          (* drive a journaling primary through a random mutation mix *)
          let persist, _ =
            Server.Persist.open_ ~fsync:Store.Journal.Never dir
          in
          let registry = Server.Registry.create ~persist () in
          let counter = ref 0 in
          List.iter
            (fun op ->
              let ids = Server.Registry.ids registry in
              match op with
              | 1 when ids <> [] ->
                  ignore
                    (Server.Registry.apply_diff registry (List.hd ids)
                       ~ops:remove_first_link_ops)
              | 2 when ids <> [] ->
                  ignore (Server.Registry.remove registry (List.hd ids))
              | _ ->
                  incr counter;
                  ignore
                    (Server.Registry.add registry
                       ~id:(Printf.sprintf "s%d" !counter)
                       project))
            ops;
          Server.Persist.close persist;
          (* the shipped stream IS the journal's record sequence *)
          let j, (r : Store.Journal.recovery) =
            Store.Journal.open_ ~fsync:Store.Journal.Never
              (Filename.concat dir "wal.log")
          in
          Store.Journal.close j;
          let entries =
            List.filter_map
              (fun (seq, payload) ->
                match Server.Persist.decode payload with
                | Ok m -> Some (seq, payload, m)
                | Error _ -> None)
              r.Store.Journal.records
          in
          if entries = [] then
            QCheck2.Test.fail_report "journal captured no mutations";
          let frame seq payload =
            let b =
              Buffer.create (Store.Record.header_size + String.length payload)
            in
            Store.Record.encode b ~seq payload;
            Buffer.contents b
          in
          let replica = Server.Registry.create () in
          let prefix = ref [] in
          let failures = ref [] in
          List.iteri
            (fun k (seq, payload, m) ->
              (match
                 Server.Registry.apply_shipped replica ~reset:false
                   (frame seq payload)
               with
              | Ok _ -> ()
              | Error e -> QCheck2.Test.fail_report e);
              prefix := !prefix @ [ m ];
              let recovered = Server.Registry.create () in
              ignore (Server.Registry.recover recovered !prefix);
              if dump_registry replica <> dump_registry recovered then
                failures :=
                  Printf.sprintf "prefix of %d mutations diverges" (k + 1)
                  :: !failures)
            entries;
          match !failures with
          | [] -> true
          | f :: _ -> QCheck2.Test.fail_report f))

(* Snapshot catch-up equivalence: wherever the checkpoint falls in
   the mutation stream, a fresh replica that bootstraps from the
   snapshot (the reset batch) and then tails the journal is
   byte-identical — session ids and evaluate JSON — to a primary
   recovered from the same store in one shot. *)
let prop_snapshot_bootstrap_equivalence =
  let gen = QCheck2.Gen.(list_size (int_range 2 4) (int_range 0 2)) in
  QCheck2.Test.make
    ~name:"replication: snapshot bootstrap + tail equals full replay" ~count:2
    gen (fun ops ->
      let failures = ref [] in
      for cut = 0 to List.length ops do
        with_temp_dir (fun dir ->
            let persist, _ =
              Server.Persist.open_ ~fsync:Store.Journal.Never dir
            in
            let registry = Server.Registry.create ~persist () in
            let counter = ref 0 in
            let drive op =
              let ids = Server.Registry.ids registry in
              match op with
              | 1 when ids <> [] ->
                  ignore
                    (Server.Registry.apply_diff registry (List.hd ids)
                       ~ops:remove_first_link_ops)
              | 2 when ids <> [] ->
                  ignore (Server.Registry.remove registry (List.hd ids))
              | _ ->
                  incr counter;
                  ignore
                    (Server.Registry.add registry
                       ~id:(Printf.sprintf "s%d" !counter)
                       project)
            in
            List.iteri
              (fun i op ->
                if i = cut then Server.Registry.checkpoint registry;
                drive op)
              ops;
            if cut = List.length ops then Server.Registry.checkpoint registry;
            (* the replica pulls with a fresh cursor: when the
               checkpoint stranded seq 0 behind the snapshot base, the
               first batch is the reset; then it tails to the frontier *)
            let replica = Server.Registry.create () in
            let applied = ref 0L in
            let rec pump () =
              let batch = Server.Persist.ship persist ~after:!applied in
              if batch.Store.Ship.reset || batch.Store.Ship.data <> "" then begin
                (match
                   Server.Registry.apply_shipped replica
                     ~reset:batch.Store.Ship.reset batch.Store.Ship.data
                 with
                | Ok (_, last) -> if last > !applied then applied := last
                | Error e -> QCheck2.Test.fail_report e);
                pump ()
              end
            in
            pump ();
            Server.Persist.close persist;
            (* oracle: one-shot recovery of snapshot + journal *)
            let p2, (recovery : Server.Persist.recovery) =
              Server.Persist.open_ ~fsync:Store.Journal.Never dir
            in
            let oracle = Server.Registry.create () in
            ignore
              (Server.Registry.recover oracle recovery.Server.Persist.mutations);
            Server.Persist.close p2;
            if dump_registry replica <> dump_registry oracle then
              failures := Printf.sprintf "cut at op %d diverges" cut :: !failures)
      done;
      match !failures with
      | [] -> true
      | f :: _ -> QCheck2.Test.fail_report f)

(* Satellite: a server-sent Retry-After is the floor under every
   backoff sleep, and a 421 carrying one is a transient rejection
   worth retrying (a promotion in flight) — unlike a bare 421, which
   still fails fast. *)
let test_retry_after_floor () =
  with_daemon (fun t ->
      let connect () = Server.Client.connect ~port:(Server.Daemon.port t) () in
      (* 503 + Retry-After: 2 — the floor dominates the jittered
         50 ms first backoff *)
      let attempts = ref 0 in
      let slept = ref [] in
      let r =
        Server.Client.with_retry ~seed:0
          ~sleep:(fun d -> slept := d :: !slept)
          ~connect
          (fun c ->
            incr attempts;
            if !attempts = 1 then
              Ok
                {
                  Server.Client.status = 503;
                  headers = [ ("retry-after", "2") ];
                  body = "";
                }
            else Server.Client.get c "/health")
      in
      Alcotest.(check int) "503 then 200" 200 (ok r).Server.Client.status;
      Alcotest.(check (list (float 1e-12))) "slept the advertised floor"
        [ 2.0 ] !slept;
      (* a 421 with Retry-After is retried on the same target *)
      let attempts = ref 0 in
      let r =
        Server.Client.with_retry ~seed:0 ~sleep:(fun _ -> ()) ~connect
          (fun c ->
            incr attempts;
            if !attempts = 1 then
              Ok
                {
                  Server.Client.status = 421;
                  headers = [ ("retry-after", "1") ];
                  body = "";
                }
            else Server.Client.get c "/health")
      in
      Alcotest.(check int) "transient 421 retried" 200
        (ok r).Server.Client.status;
      Alcotest.(check int) "two attempts" 2 !attempts;
      (* without the header, 421 is structural: no retry *)
      let attempts = ref 0 in
      let r =
        Server.Client.with_retry ~seed:0 ~sleep:(fun _ -> ()) ~connect
          (fun _ ->
            incr attempts;
            Ok { Server.Client.status = 421; headers = []; body = "" })
      in
      Alcotest.(check int) "bare 421 through" 421 (ok r).Server.Client.status;
      Alcotest.(check int) "single attempt" 1 !attempts)

(* Client-side failover: reads spread over the fleet and fail over
   when a hop dies; mutations land on the primary from anywhere. *)
let test_replica_set () =
  with_replicated (fun primary replica ->
      with_client primary (fun pc ->
          Alcotest.(check int) "created" 201
            (ok (Server.Client.post pc "/sessions" ~body:(create_body "pims")))
              .Server.Client.status);
      wait_replica replica ~seq:1L;
      let paddr = ("127.0.0.1", Server.Daemon.port primary) in
      let raddr = ("127.0.0.1", Server.Daemon.port replica) in
      let rs = Server.Client.replica_set ~sleep:(fun _ -> ()) [ raddr; paddr ] in
      Server.Client.probe rs;
      Alcotest.(check int) "both endpoints healthy" 2
        (List.length (Server.Client.healthy_endpoints rs));
      (* reads spread round-robin: every one succeeds *)
      for i = 1 to 4 do
        Alcotest.(check int)
          (Printf.sprintf "read %d" i)
          200
          (ok (Server.Client.read rs (fun c -> Server.Client.get c "/sessions")))
            .Server.Client.status
      done;
      (* a mutation routes to the primary even though the replica is
         listed first *)
      let r =
        ok
          (Server.Client.mutate rs (fun c ->
               Server.Client.post c "/sessions" ~body:(create_body "routed")))
      in
      Alcotest.(check int) "mutation landed" 201 r.Server.Client.status;
      with_client primary (fun pc ->
          Alcotest.(check bool) "created on the primary" true
            (List.mem "routed"
               (session_ids (body_json (ok (Server.Client.get pc "/sessions"))))));
      (* kill the replica: reads fail over to the surviving sibling *)
      Server.Daemon.stop replica;
      Alcotest.(check int) "read survives a dead hop" 200
        (ok (Server.Client.read rs (fun c -> Server.Client.get c "/sessions")))
          .Server.Client.status;
      Server.Client.probe rs;
      Alcotest.(check (list (pair string int))) "only the primary is healthy"
        [ paddr ]
        (Server.Client.healthy_endpoints rs))

(* The tentpole end-to-end: a durable replica chains a leaf off
   itself, evaluates stay byte-identical down the chain, the root
   exposes per-cursor ship stats, promotion makes the middle hop a
   real primary that keeps shipping to its leaf, and the hop's
   journal alone reboots the full state. *)
let test_e2e_chained_replication () =
  with_temp_dir (fun dir_a ->
      with_temp_dir (fun dir_b ->
          let config_a =
            {
              Server.Daemon.default_config with
              Server.Daemon.data_dir = Some dir_a;
              fsync = Store.Journal.Never;
            }
          in
          with_daemon ~config:config_a (fun a ->
              let expected =
                with_client a (fun c ->
                    Alcotest.(check int) "created on the root" 201
                      (ok
                         (Server.Client.post c "/sessions"
                            ~body:(create_body "pims")))
                        .Server.Client.status;
                    (ok (Server.Client.post c "/sessions/pims/evaluate" ~body:""))
                      .Server.Client.body)
              in
              let config_b =
                {
                  Server.Daemon.default_config with
                  Server.Daemon.data_dir = Some dir_b;
                  fsync = Store.Journal.Never;
                  replica_of = Some ("127.0.0.1", Server.Daemon.port a);
                  replica_poll = 0.005;
                }
              in
              with_daemon ~config:config_b (fun b ->
                  wait_replica b ~seq:1L;
                  let config_c =
                    {
                      Server.Daemon.default_config with
                      Server.Daemon.replica_of =
                        Some ("127.0.0.1", Server.Daemon.port b);
                      replica_poll = 0.005;
                    }
                  in
                  with_daemon ~config:config_c (fun leaf ->
                      wait_replica leaf ~seq:1L;
                      let evaluate t =
                        with_client t (fun c ->
                            (ok
                               (Server.Client.post c "/sessions/pims/evaluate"
                                  ~body:""))
                              .Server.Client.body)
                      in
                      Alcotest.(check string) "hop evaluate byte-identical"
                        expected (evaluate b);
                      Alcotest.(check string) "leaf evaluate byte-identical"
                        expected (evaluate leaf);
                      (* the root's /replication and /metrics expose
                         ship cursor stats once a replica has fetched *)
                      with_client a (fun c ->
                          let repl =
                            body_json (ok (Server.Client.get c "/replication"))
                          in
                          let ship = repl |> member_exn "ship" in
                          Alcotest.(check bool) "ship stats count hits" true
                            ((ship |> member_exn "cursor_hits"
                             |> Jsonlight.int_opt |> Option.get)
                            > 0);
                          Alcotest.(check bool) "ship stats mirrored" true
                            (Jsonlight.member "ship"
                               (body_json (ok (Server.Client.get c "/metrics")))
                            <> None));
                      (* promote the middle hop: it seals, accepts
                         mutations, journals them, and keeps shipping
                         to its own leaf *)
                      Server.Daemon.promote b;
                      with_client b (fun c ->
                          Alcotest.(check int) "promoted hop accepts writes" 201
                            (ok
                               (Server.Client.post c "/sessions"
                                  ~body:(create_body "promoted")))
                              .Server.Client.status);
                      wait_replica leaf ~seq:2L;
                      with_client leaf (fun c ->
                          Alcotest.(check bool) "leaf followed the promoted hop"
                            true
                            (List.mem "promoted"
                               (session_ids
                                  (body_json
                                     (ok (Server.Client.get c "/sessions")))))))));
          (* the hop journaled everything it applied: its data dir
             alone boots a primary serving both sessions *)
          let config_b2 =
            {
              Server.Daemon.default_config with
              Server.Daemon.data_dir = Some dir_b;
            }
          in
          with_daemon ~config:config_b2 (fun b2 ->
              with_client b2 (fun c ->
                  let ids =
                    session_ids
                      (body_json (ok (Server.Client.get c "/sessions")))
                  in
                  List.iter
                    (fun id ->
                      Alcotest.(check bool) ("durable: " ^ id) true
                        (List.mem id ids))
                    [ "pims"; "promoted" ]))))

(* The crash acceptance bar, over real processes: the replica never
   serves a record the primary had not fsynced (its state after a
   SIGKILL is a subset of a recovered primary's), and a SIGUSR1
   promotion turns it into a primary that accepts mutations without
   losing any write it had applied. *)
let test_e2e_replication_promote_crash () =
  with_temp_dir (fun dir ->
      let pid, ic, port =
        spawn_serve
          [
            "--port"; "0"; "--data-dir"; dir; "--fsync"; "always";
            "--group-commit-window"; "1";
          ]
      in
      let rpid, ric, rport =
        spawn_serve
          [ "--port"; "0"; "--replica-of"; "127.0.0.1:" ^ string_of_int port ]
      in
      let get_on p path =
        let c = Server.Client.connect ~port:p () in
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () -> ok (Server.Client.get c path))
      in
      let post_on p path body =
        let c = Server.Client.connect ~port:p () in
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () -> ok (Server.Client.post c path ~body))
      in
      (* phase 1: quiesced writes the replica fully applies *)
      Alcotest.(check int) "p1 created" 201
        (post_on port "/sessions" (create_body "p1")).Server.Client.status;
      Alcotest.(check int) "p2 created" 201
        (post_on port "/sessions" (create_body "p2")).Server.Client.status;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_lag () =
        let j = body_json (get_on rport "/replication") in
        let applied =
          j |> member_exn "applied_seq" |> Jsonlight.int_opt |> Option.get
        in
        let lag = j |> member_exn "lag" |> Jsonlight.int_opt |> Option.get in
        if applied >= 2 && lag = 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "replica never caught up"
        else begin
          Thread.delay 0.02;
          wait_lag ()
        end
      in
      wait_lag ();
      (* phase 2: hammer creates, SIGKILL the primary mid-group-commit *)
      let acked = ref [] in
      let loader =
        Thread.create
          (fun () ->
            let rec go i =
              if i < 500 then
                match
                  let c = Server.Client.connect ~port () in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      Server.Client.post c "/sessions"
                        ~body:(create_body (Printf.sprintf "k%03d" i)))
                with
                | Ok { Server.Client.status = 201; _ } ->
                    acked := Printf.sprintf "k%03d" i :: !acked;
                    go (i + 1)
                | Ok _ | Error _ -> ()
                | exception _ -> ()
            in
            go 0)
          ()
      in
      Thread.delay 0.4;
      Unix.kill pid Sys.sigkill;
      Thread.join loader;
      ignore (Unix.waitpid [] pid);
      close_in ic;
      Alcotest.(check bool) "some creates were acknowledged" true (!acked <> []);
      (* give the apply loop a beat to drain what it already fetched;
         its state is frozen once the primary is gone *)
      Thread.delay 0.3;
      let replica_ids = session_ids (body_json (get_on rport "/sessions")) in
      (* never ahead: everything the replica serves must be on a
         primary recovered from the same journal — i.e. durable *)
      let pid2, ic2, port2 =
        spawn_serve [ "--port"; "0"; "--data-dir"; dir; "--fsync"; "always" ]
      in
      let durable_ids =
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid2 Sys.sigterm with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid2);
            close_in ic2)
          (fun () -> session_ids (body_json (get_on port2 "/sessions")))
      in
      List.iter
        (fun id ->
          Alcotest.(check bool) ("replica never ahead: " ^ id) true
            (List.mem id durable_ids))
        replica_ids;
      Alcotest.(check bool) "quiesced sessions replicated" true
        (List.mem "p1" replica_ids && List.mem "p2" replica_ids);
      (* phase 3: promote — the replica seals and accepts mutations,
         keeping every write it had applied *)
      Unix.kill rpid Sys.sigusr1;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_promote () =
        match
          body_json (get_on rport "/replication")
          |> member_exn "role" |> Jsonlight.string_opt
        with
        | Some "primary" -> ()
        | _ ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "promotion never landed"
            else begin
              Thread.delay 0.05;
              wait_promote ()
            end
      in
      wait_promote ();
      Alcotest.(check int) "promoted replica accepts mutations" 201
        (post_on rport "/sessions" (create_body "post-promote"))
          .Server.Client.status;
      let after = session_ids (body_json (get_on rport "/sessions")) in
      List.iter
        (fun id ->
          Alcotest.(check bool) ("no write lost: " ^ id) true
            (List.mem id after))
        ("post-promote" :: replica_ids);
      (try Unix.kill rpid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] rpid);
      close_in ric)

let suite =
  [
    Alcotest.test_case "http: simple request" `Quick test_parse_simple;
    Alcotest.test_case "http: body + pipelining" `Quick test_parse_body_and_pipeline;
    Alcotest.test_case "http: malformed inputs" `Quick test_parse_errors;
    Alcotest.test_case "http: weak If-None-Match" `Quick test_if_none_match_weak;
    Alcotest.test_case "http: size limits" `Quick test_parse_limits;
    Alcotest.test_case "http: serialization" `Quick test_serialize;
    QCheck_alcotest.to_alcotest prop_torn_reads;
    QCheck_alcotest.to_alcotest prop_pipelined_framing;
    QCheck_alcotest.to_alcotest prop_suppressed_body;
    QCheck_alcotest.to_alcotest prop_no_crash;
    QCheck_alcotest.to_alcotest prop_oversized_rejected;
    Alcotest.test_case "router dispatch" `Quick test_router;
    Alcotest.test_case "e2e: health + error taxonomy" `Quick test_e2e_health_and_errors;
    Alcotest.test_case "e2e: Fig. 4 over HTTP, bit-identical" `Quick
      test_e2e_fig4_bit_identical;
    Alcotest.test_case "e2e: concurrent clients, one session" `Quick
      test_e2e_concurrent_clients;
    Alcotest.test_case "e2e: conditional evaluate (ETag/304)" `Quick
      test_e2e_conditional;
    Alcotest.test_case "registry: delete/recreate cache isolation" `Quick
      test_registry_incarnation;
    Alcotest.test_case "e2e: batch evaluate matches one-shot" `Quick
      test_e2e_batch;
    Alcotest.test_case "e2e: per-connection request cap" `Quick
      test_e2e_request_cap;
    Alcotest.test_case "e2e: HEAD from GET routes" `Quick test_e2e_head;
    Alcotest.test_case "client: persistent handle reconnects" `Quick
      test_client_persistent;
    Alcotest.test_case "e2e: simulate campaign over HTTP" `Quick test_e2e_simulate;
    Alcotest.test_case "e2e: robustness (413, 408, garbage)" `Quick test_e2e_robustness;
    Alcotest.test_case "e2e: unix-domain socket" `Quick test_e2e_unix_socket;
    Alcotest.test_case "daemon: stop is idempotent" `Quick test_stop_idempotent;
    Alcotest.test_case "client: backoff schedule is seeded" `Quick
      test_retry_schedule;
    Alcotest.test_case "client: with_retry reconnects" `Quick test_retry_reconnect;
    Alcotest.test_case "e2e: durability across clean restart" `Quick
      test_e2e_persistence_restart;
    Alcotest.test_case "e2e: SIGKILL mid-load, acknowledged survives" `Quick
      test_e2e_sigkill_mid_load;
    Alcotest.test_case "registry: concurrent group-commit mutators recover"
      `Quick test_registry_group_concurrent_recovery;
    Alcotest.test_case "metrics: idle group commit invisible" `Quick
      test_metrics_group_idle;
    Alcotest.test_case "e2e: SIGKILL during background compaction" `Quick
      test_e2e_sigkill_during_compaction;
    Alcotest.test_case "e2e: replica serves reads, rejects writes" `Quick
      test_e2e_replication;
    Alcotest.test_case "e2e: replica bootstraps from the snapshot" `Quick
      test_e2e_replica_snapshot_bootstrap;
    Alcotest.test_case "replica: reads interleave with the apply loop" `Quick
      test_replica_apply_read_interleave;
    Alcotest.test_case "registry: reset batch replaces the state" `Quick
      test_apply_shipped_reset;
    QCheck_alcotest.to_alcotest prop_replica_prefix_equivalence;
    QCheck_alcotest.to_alcotest prop_snapshot_bootstrap_equivalence;
    Alcotest.test_case "client: Retry-After floors the backoff" `Quick
      test_retry_after_floor;
    Alcotest.test_case "client: replica set spreads reads, fails over" `Quick
      test_replica_set;
    Alcotest.test_case "e2e: chained replication + hop promotion" `Quick
      test_e2e_chained_replication;
    Alcotest.test_case "e2e: SIGKILL primary, never-ahead + promotion" `Quick
      test_e2e_replication_promote_crash;
  ]
