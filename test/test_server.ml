(* The evaluation server: HTTP parser unit + property tests, router
   dispatch, and end-to-end daemon tests over real sockets — including
   the paper's Fig. 4 excise-and-re-evaluate flow as HTTP calls, whose
   verdicts must be bit-identical to an in-process Session. *)

module Http = Server.Http
module Router = Server.Router

(* ---------------- HTTP parser: units ------------------------------ *)

let parse_one bytes =
  let p = Http.parser_ () in
  Http.feed p bytes;
  Http.next p

let test_parse_simple () =
  match parse_one "GET /sessions/a%20b/stats?x=1&y=two+three HTTP/1.1\r\nHost: h\r\n\r\n" with
  | `Request r ->
      Alcotest.(check bool) "GET" true (r.Http.meth = Http.GET);
      Alcotest.(check (list string))
        "decoded path" [ "sessions"; "a b"; "stats" ] r.Http.path;
      Alcotest.(check (list (pair string string)))
        "decoded query"
        [ ("x", "1"); ("y", "two three") ]
        r.Http.query;
      Alcotest.(check bool) "keep alive" true (Http.keep_alive r);
      Alcotest.(check string) "body empty" "" r.Http.body
  | `Need_more -> Alcotest.fail "need more"
  | `Error e -> Alcotest.fail (Http.parse_error_message e)

let test_parse_body_and_pipeline () =
  let p = Http.parser_ () in
  Http.feed p "POST /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /b HTTP/1.1\r\n\r\n";
  (match Http.next p with
  | `Request r ->
      Alcotest.(check string) "body" "hello" r.Http.body;
      Alcotest.(check (list string)) "path a" [ "a" ] r.Http.path
  | _ -> Alcotest.fail "first request");
  (match Http.next p with
  | `Request r ->
      Alcotest.(check (list string)) "pipelined path b" [ "b" ] r.Http.path;
      Alcotest.(check bool) "drained" true (Http.buffered p = 0)
  | _ -> Alcotest.fail "second request");
  Alcotest.(check bool) "then quiescent" true (Http.next p = `Need_more)

let test_parse_errors () =
  let err bytes =
    match parse_one bytes with
    | `Error e -> e
    | `Request _ -> Alcotest.fail ("parsed: " ^ String.escaped bytes)
    | `Need_more -> Alcotest.fail ("need more: " ^ String.escaped bytes)
  in
  (match err "GET /\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "missing version");
  (match err "GET / HTTP/2\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "http/2");
  (match err "GET nothing HTTP/1.1\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "relative target");
  (match err "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" with
  | Http.Unsupported _ -> ()
  | _ -> Alcotest.fail "transfer-encoding");
  (match err "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n" with
  | Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "conflicting lengths");
  (* errors are sticky *)
  let p = Http.parser_ () in
  Http.feed p "BAD\r\n\r\n";
  (match Http.next p with `Error _ -> () | _ -> Alcotest.fail "bad line");
  Http.feed p "GET / HTTP/1.1\r\n\r\n";
  match Http.next p with
  | `Error _ -> ()
  | _ -> Alcotest.fail "error should be sticky"

let test_parse_limits () =
  let p = Http.parser_ ~max_head:64 ~max_body:10 () in
  Http.feed p ("GET / HTTP/1.1\r\nX: " ^ String.make 100 'a' ^ "\r\n\r\n");
  (match Http.next p with
  | `Error Http.Head_too_large -> ()
  | _ -> Alcotest.fail "head limit");
  let p = Http.parser_ ~max_body:10 () in
  Http.feed p "POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n";
  (match Http.next p with
  | `Error Http.Body_too_large -> ()
  | _ -> Alcotest.fail "body limit");
  (* a huge declared length must be rejected before the bytes arrive,
     and without overflowing *)
  let p = Http.parser_ ~max_body:10 () in
  Http.feed p "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n";
  match Http.next p with
  | `Error Http.Body_too_large -> ()
  | _ -> Alcotest.fail "overflowing length"

let test_serialize () =
  let r = Http.response ~headers:[ ("Content-Type", "text/plain") ] 200 "hi" in
  Alcotest.(check string) "basic"
    "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi"
    (Http.serialize ~close:false r);
  Alcotest.(check bool) "close header" true
    (let s = Http.serialize ~close:true r in
     let rec contains i =
       i >= 0
       && (String.length s - i >= 17 && String.sub s i 17 = "Connection: close"
          || contains (i - 1))
     in
     contains (String.length s - 17));
  (* HEAD keeps Content-Length but drops the body *)
  let head = Http.serialize ~request_meth:Http.HEAD ~close:false r in
  Alcotest.(check bool) "head has length" true
    (String.length head < String.length (Http.serialize ~close:false r));
  Alcotest.(check string) "head ends at blank line" "\r\n\r\n"
    (String.sub head (String.length head - 4) 4)

(* ---------------- HTTP parser: properties -------------------------- *)

(* a valid request and a random chunking of its bytes *)
let gen_request_and_cuts =
  QCheck2.Gen.(
    let ident = string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '-' ]) (int_range 1 8) in
    let* meth = oneofl [ "GET"; "POST"; "DELETE"; "PUT" ] in
    let* segments = list_size (int_range 0 4) ident in
    let* body = string_size ~gen:(oneofl [ 'x'; '{'; '"'; ' '; '\n' ]) (int_range 0 64) in
    let* extra_headers = list_size (int_range 0 3) (pair ident ident) in
    let target = "/" ^ String.concat "/" segments in
    let head =
      Printf.sprintf "%s %s HTTP/1.1\r\n%sContent-Length: %d\r\n\r\n" meth target
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf "x-%s: %s\r\n" k v) extra_headers))
        (String.length body)
    in
    let bytes = head ^ body in
    let* cuts = list_size (int_range 0 8) (int_range 0 (String.length bytes)) in
    return (bytes, cuts))

let chunks_of bytes cuts =
  let cuts = List.sort_uniq compare (0 :: String.length bytes :: cuts) in
  let rec go = function
    | a :: (b :: _ as rest) -> String.sub bytes a (b - a) :: go rest
    | _ -> []
  in
  go cuts

let prop_torn_reads =
  QCheck2.Test.make
    ~name:"http parser: any chunking of a valid request parses identically"
    ~count:500 gen_request_and_cuts (fun (bytes, cuts) ->
      let whole =
        match parse_one bytes with
        | `Request r -> r
        | _ -> QCheck2.Test.fail_report "whole request did not parse"
      in
      let p = Http.parser_ () in
      let result = ref `Need_more in
      List.iter
        (fun chunk ->
          Http.feed p chunk;
          match Http.next p with
          | `Request r -> result := `Request r
          | `Need_more -> ()
          | `Error e -> QCheck2.Test.fail_report (Http.parse_error_message e))
        (chunks_of bytes cuts);
      match !result with
      | `Request r -> r = whole && Http.buffered p = 0
      | `Need_more -> QCheck2.Test.fail_report "chunked feed never completed")

let prop_no_crash =
  QCheck2.Test.make ~name:"http parser: arbitrary bytes never raise" ~count:1000
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun junk ->
      let p = Http.parser_ ~max_head:128 ~max_body:128 () in
      Http.feed p junk;
      let rec drain n =
        if n = 0 then true
        else
          match Http.next p with
          | `Request _ -> drain (n - 1)
          | `Need_more | `Error _ -> true
      in
      drain 8)

let prop_oversized_rejected =
  QCheck2.Test.make
    ~name:"http parser: declared bodies beyond the limit always error"
    ~count:200
    QCheck2.Gen.(int_range 11 1_000_000)
    (fun n ->
      let p = Http.parser_ ~max_body:10 () in
      Http.feed p (Printf.sprintf "POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n" n);
      match Http.next p with `Error Http.Body_too_large -> true | _ -> false)

(* ---------------- router ------------------------------------------ *)

let test_router () =
  let routes =
    [
      Router.route Http.GET "/health" (fun () _ _ -> Http.response 200 "h");
      Router.route Http.GET "/sessions/:id/stats" (fun () _ params ->
          Http.response 200 (Router.param params "id"));
      Router.route Http.POST "/sessions/:id/evaluate" (fun () _ _ ->
          Http.response 200 "e");
    ]
  in
  let request target meth =
    match parse_one (Printf.sprintf "%s %s HTTP/1.1\r\n\r\n" (Http.meth_to_string meth) target) with
    | `Request r -> r
    | _ -> Alcotest.fail "request"
  in
  (match Router.dispatch routes () (request "/sessions/pims/stats" Http.GET) with
  | `Response (pattern, r) ->
      Alcotest.(check string) "pattern" "/sessions/:id/stats" pattern;
      Alcotest.(check string) "captured id" "pims" r.Http.resp_body
  | _ -> Alcotest.fail "should match");
  (match Router.dispatch routes () (request "/nope" Http.GET) with
  | `Not_found -> ()
  | _ -> Alcotest.fail "should be 404");
  match Router.dispatch routes () (request "/health" Http.POST) with
  | `Method_not_allowed [ Http.GET ] -> ()
  | _ -> Alcotest.fail "should be 405 allowing GET"

(* ---------------- end-to-end over sockets -------------------------- *)

let project =
  {
    Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
    architecture = Casestudies.Pims.architecture;
    mapping = Casestudies.Pims.mapping;
  }

(* the three PIMS artifacts as XML strings, via a temp-dir round trip *)
let artifact_strings =
  lazy
    (let dir = Filename.temp_file "sosae" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     let f name = Filename.concat dir name in
     Core.Sosae.save_project project ~scenarios:(f "s.xml")
       ~architecture:(f "a.xml") ~mapping:(f "m.xml");
     let read name =
       let ic = open_in_bin (f name) in
       let s = really_input_string ic (in_channel_length ic) in
       close_in ic;
       s
     in
     let result = (read "s.xml", read "a.xml", read "m.xml") in
     Array.iter (fun n -> Sys.remove (f n)) [| "s.xml"; "a.xml"; "m.xml" |];
     Unix.rmdir dir;
     result)

let json_escape s =
  let buf = Buffer.create (String.length s + 16) in
  Jsonlight.to_buffer buf (Jsonlight.String s);
  Buffer.contents buf

let create_body id =
  let scenarios, architecture, mapping = Lazy.force artifact_strings in
  Printf.sprintf
    {|{"id":%s,"scenarios":%s,"architecture":%s,"mapping":%s}|}
    (json_escape id) (json_escape scenarios) (json_escape architecture)
    (json_escape mapping)

let with_daemon ?(config = Server.Daemon.default_config) f =
  let t =
    Server.Daemon.start ~config:{ config with Server.Daemon.port = 0 } ()
  in
  Fun.protect ~finally:(fun () -> Server.Daemon.stop t) (fun () -> f t)

let with_client t f =
  let c = Server.Client.connect ~port:(Server.Daemon.port t) () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

let ok = function
  | Ok (r : Server.Client.response) -> r
  | Error m -> Alcotest.fail ("client: " ^ m)

let body_json (r : Server.Client.response) =
  match Jsonlight.of_string r.Server.Client.body with
  | Ok j -> j
  | Error m -> Alcotest.failf "response body is not JSON (%s): %s" m r.Server.Client.body

let member_exn name json =
  match Jsonlight.member name json with
  | Some j -> j
  | None -> Alcotest.failf "response lacks %S: %s" name (Jsonlight.to_string json)

let expect_error status category (r : Server.Client.response) =
  Alcotest.(check int) (category ^ " status") status r.Server.Client.status;
  let cat =
    body_json r |> member_exn "error" |> member_exn "category"
    |> Jsonlight.string_opt |> Option.get
  in
  Alcotest.(check string) "category" category cat

let test_e2e_health_and_errors () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.get c "/health") in
          Alcotest.(check int) "health 200" 200 r.Server.Client.status;
          Alcotest.(check (option string))
            "status ok" (Some "ok")
            (body_json r |> member_exn "status" |> Jsonlight.string_opt);
          (* one keep-alive connection serves all of these *)
          expect_error 404 "not_found" (ok (Server.Client.get c "/nope"));
          expect_error 404 "not_found"
            (ok (Server.Client.post c "/sessions/ghost/evaluate" ~body:""));
          expect_error 405 "method_not_allowed"
            (ok (Server.Client.post c "/health" ~body:""));
          expect_error 400 "bad_request"
            (ok (Server.Client.post c "/sessions" ~body:"{not json"));
          expect_error 400 "xml_error"
            (ok
               (Server.Client.post c "/sessions"
                  ~body:
                    {|{"id":"x","scenarios":"<scenarioSet","architecture":"","mapping":""}|}));
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "dup")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          expect_error 409 "conflict"
            (ok (Server.Client.post c "/sessions" ~body:(create_body "dup")));
          let r = ok (Server.Client.request c Http.DELETE "/sessions/dup") in
          Alcotest.(check int) "deleted" 200 r.Server.Client.status;
          expect_error 404 "not_found"
            (ok (Server.Client.request c Http.DELETE "/sessions/dup"))))

(* The acceptance bar: the Fig. 4 excise-and-re-evaluate flow over
   HTTP must produce verdicts bit-identical to an in-process
   Session. Stats deltas are compared too: the cache behaves the same
   whether driven over the wire or directly. *)
let test_e2e_fig4_bit_identical () =
  with_daemon (fun t ->
      let expected = Core.Sosae.Session.create project in
      let expected_json () =
        Jsonlight.to_string
          (Walkthrough.Report.json_of_set_result
             (Core.Sosae.Session.evaluate ~jobs:2 expected))
      in
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "pims")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          let evaluate () =
            let r = ok (Server.Client.post c "/sessions/pims/evaluate" ~body:"{}") in
            Alcotest.(check int) "evaluate 200" 200 r.Server.Client.status;
            let json = body_json r in
            ( Jsonlight.to_string (member_exn "result" json),
              member_exn "re_evaluated" json |> Jsonlight.int_opt |> Option.get,
              member_exn "served_from_cache" json |> Jsonlight.int_opt |> Option.get )
          in
          (* initial evaluation: everything is a fresh walk *)
          let result, re_evaluated, from_cache = evaluate () in
          Alcotest.(check string) "initial verdicts identical" (expected_json ()) result;
          Alcotest.(check int) "22 fresh walks" 22 re_evaluated;
          Alcotest.(check int) "nothing cached yet" 0 from_cache;
          (* excise the Loader–Data Access link, as Fig. 4 does *)
          let r =
            ok
              (Server.Client.post c "/sessions/pims/diff"
                 ~body:
                   {|{"ops":[{"op":"excise","from":"data-access","to":"loader"}]}|})
          in
          Alcotest.(check int) "diff 200" 200 r.Server.Client.status;
          Core.Sosae.Session.apply_diff expected
            [
              Adl.Diff.Remove_link
                (let link =
                   List.find
                     (fun (l : Adl.Structure.link) ->
                       let a = l.Adl.Structure.link_from.Adl.Structure.anchor
                       and b = l.Adl.Structure.link_to.Adl.Structure.anchor in
                       (a = "data-access" && b = "loader")
                       || (a = "loader" && b = "data-access"))
                     (Core.Sosae.Session.project expected).Core.Sosae.architecture
                       .Adl.Structure.links
                 in
                 link.Adl.Structure.link_id);
            ];
          (* re-evaluation: the broken verdicts, mostly from cache *)
          let result, re_evaluated, from_cache = evaluate () in
          Alcotest.(check string) "post-excision verdicts identical"
            (expected_json ()) result;
          Alcotest.(check bool) "some re-walked" true (re_evaluated > 0);
          Alcotest.(check bool) "most served from cache" true
            (from_cache > re_evaluated);
          Alcotest.(check bool) "broken architecture detected" true
            (match
               Jsonlight.of_string result |> Result.get_ok
               |> Jsonlight.member "consistent"
             with
            | Some (Jsonlight.Bool b) -> not b
            | _ -> Alcotest.fail "no consistent field");
          (* a sub-suite through the cache matches evaluate_scenario *)
          let r =
            ok
              (Server.Client.post c "/sessions/pims/evaluate"
                 ~body:{|{"scenarios":["get-share-prices"]}|})
          in
          let sub =
            body_json r |> member_exn "results" |> Jsonlight.list_opt |> Option.get
          in
          let direct =
            Walkthrough.Report.json_of_scenario_result
              (Option.get
                 (Core.Sosae.Session.evaluate_scenario expected "get-share-prices"))
          in
          Alcotest.(check string) "sub-suite verdict identical"
            (Jsonlight.to_string direct)
            (Jsonlight.to_string (List.hd sub));
          expect_error 404 "not_found"
            (ok
               (Server.Client.post c "/sessions/pims/evaluate"
                  ~body:{|{"scenarios":["nope"]}|}));
          expect_error 409 "apply_error"
            (ok
               (Server.Client.post c "/sessions/pims/diff"
                  ~body:{|{"ops":[{"op":"excise","from":"data-access","to":"loader"}]}|}))))

let test_e2e_concurrent_clients () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "shared")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status);
      let expected =
        Jsonlight.to_string
          (Walkthrough.Report.json_of_set_result
             (Core.Sosae.Session.evaluate ~jobs:2 (Core.Sosae.Session.create project)))
      in
      let n = 8 in
      let results = Array.make n (Error "unset") in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  (try
                     with_client t (fun c ->
                         let r =
                           ok (Server.Client.post c "/sessions/shared/evaluate" ~body:"")
                         in
                         Ok
                           ( r.Server.Client.status,
                             Jsonlight.to_string
                               (member_exn "result" (body_json r)) ))
                   with e -> Error (Printexc.to_string e)))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i result ->
          match result with
          | Error m -> Alcotest.failf "client %d failed: %s" i m
          | Ok (status, result) ->
              Alcotest.(check int) (Printf.sprintf "client %d status" i) 200 status;
              Alcotest.(check string)
                (Printf.sprintf "client %d verdicts" i)
                expected result)
        results;
      (* all 8 calls hit one session: 22 walks total, the rest cache *)
      let stats_body =
        with_client t (fun c -> ok (Server.Client.get c "/sessions/shared/stats"))
      in
      let stats = body_json stats_body |> member_exn "stats" in
      Alcotest.(check (option int))
        "22 walks across all clients" (Some 22)
        (member_exn "evaluations" stats |> Jsonlight.int_opt);
      Alcotest.(check (option int))
        "7x22 cache hits"
        (Some (7 * 22))
        (member_exn "cache_hits" stats |> Jsonlight.int_opt))

(* POST /sessions/:id/simulate over the wire must equal an in-process
   Dsim.Campaign run bit-for-bit: same seed, same campaign parameters
   (mirroring Casestudies.Campaigns.pims_price_feed), same report JSON
   regardless of the jobs fan-out. *)
let test_e2e_simulate () =
  with_daemon (fun t ->
      with_client t (fun c ->
          let r = ok (Server.Client.post c "/sessions" ~body:(create_body "sim")) in
          Alcotest.(check int) "created" 201 r.Server.Client.status;
          let behavior =
            Statechart.Bundle.to_string
              (Statechart.Bundle.make ~id:"price-feed"
                 Casestudies.Campaigns.price_feed_charts)
          in
          let body ~jobs =
            Printf.sprintf
              {|{"behavior":%s,
                 "stimuli":[{"component":"master-controller","trigger":"user-initiates"}],
                 "goal":{"component":"remote-price-db","payload":"fetch-prices"},
                 "faults":[{"kind":"crash","node":"remote-price-db",
                            "at":{"lo":0,"hi":3},"downtime":{"lo":1,"hi":5}}],
                 "trials":120,"seed":9,"horizon":10,"jitter":0.25,"loss":0.05,
                 "jobs":%d}|}
              (json_escape behavior) jobs
          in
          let simulate ~jobs =
            let r = ok (Server.Client.post c "/sessions/sim/simulate" ~body:(body ~jobs)) in
            Alcotest.(check int) "simulate 200" 200 r.Server.Client.status;
            let json = body_json r in
            Alcotest.(check (option int))
              "trials echoed" (Some 120)
              (member_exn "trials" json |> Jsonlight.int_opt);
            Jsonlight.to_string (member_exn "report" json)
          in
          let expected =
            Jsonlight.to_string
              (Dsim.Stats.to_json
                 (Dsim.Campaign.report ~jobs:2 ~seed:9 ~trials:120
                    (Casestudies.Campaigns.pims_price_feed ~loss:0.05 ())))
          in
          Alcotest.(check string) "wire report = in-process campaign" expected
            (simulate ~jobs:2);
          Alcotest.(check string) "jobs fan-out does not change the report" expected
            (simulate ~jobs:4);
          (* request validation *)
          expect_error 400 "xml_error"
            (ok
               (Server.Client.post c "/sessions/sim/simulate"
                  ~body:
                    {|{"behavior":"<archBehavior","stimuli":[{"component":"x","trigger":"y"}],"goal":{"component":"x","payload":"y"}}|}));
          expect_error 400 "bad_request"
            (ok
               (Server.Client.post c "/sessions/sim/simulate"
                  ~body:(Printf.sprintf {|{"behavior":%s}|} (json_escape behavior))));
          expect_error 404 "not_found"
            (ok (Server.Client.post c "/sessions/ghost/simulate" ~body:(body ~jobs:1)))))

let test_e2e_robustness () =
  let config =
    {
      Server.Daemon.default_config with
      Server.Daemon.read_timeout = 0.3;
      max_body = 2048;
      workers = 2;
    }
  in
  with_daemon ~config (fun t ->
      (* oversized body → 413 with the payload_too_large category *)
      with_client t (fun c ->
          expect_error 413 "payload_too_large"
            (ok
               (Server.Client.post c "/sessions"
                  ~body:(String.make 4096 'x'))));
      (* torn request + timeout → 408, connection closed *)
      (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect fd
         (Unix.ADDR_INET
            (Unix.inet_addr_of_string "127.0.0.1", Server.Daemon.port t));
       let partial = "POST /sessions HTTP/1.1\r\nContent-Le" in
       ignore (Unix.write_substring fd partial 0 (String.length partial));
       let buf = Bytes.create 1024 in
       let n = Unix.read fd buf 0 1024 in
       let response = Bytes.sub_string buf 0 n in
       Unix.close fd;
       Alcotest.(check bool) "408 on mid-request timeout" true
         (String.length response >= 12 && String.sub response 9 3 = "408"));
      (* unparseable request line → 400 and close *)
      with_client t (fun c ->
          match Server.Client.request c (Http.Other "NO SUCH") "/" with
          | Ok r -> Alcotest.(check int) "400 on garbage" 400 r.Server.Client.status
          | Error m -> Alcotest.fail m);
      (* the daemon survives all of the above *)
      with_client t (fun c ->
          Alcotest.(check int) "still healthy" 200
            (ok (Server.Client.get c "/health")).Server.Client.status))

let test_e2e_unix_socket () =
  let path = Filename.temp_file "sosae" ".sock" in
  Sys.remove path;
  let config =
    { Server.Daemon.default_config with Server.Daemon.unix_path = Some path }
  in
  with_daemon ~config (fun _t ->
      let c = Server.Client.connect_unix path in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          Alcotest.(check int) "health over unix socket" 200
            (ok (Server.Client.get c "/health")).Server.Client.status));
  Alcotest.(check bool) "socket file removed on stop" false (Sys.file_exists path)

let test_stop_idempotent () =
  let t = Server.Daemon.start ~config:{ Server.Daemon.default_config with Server.Daemon.port = 0 } () in
  Server.Daemon.stop t;
  Server.Daemon.stop t

let suite =
  [
    Alcotest.test_case "http: simple request" `Quick test_parse_simple;
    Alcotest.test_case "http: body + pipelining" `Quick test_parse_body_and_pipeline;
    Alcotest.test_case "http: malformed inputs" `Quick test_parse_errors;
    Alcotest.test_case "http: size limits" `Quick test_parse_limits;
    Alcotest.test_case "http: serialization" `Quick test_serialize;
    QCheck_alcotest.to_alcotest prop_torn_reads;
    QCheck_alcotest.to_alcotest prop_no_crash;
    QCheck_alcotest.to_alcotest prop_oversized_rejected;
    Alcotest.test_case "router dispatch" `Quick test_router;
    Alcotest.test_case "e2e: health + error taxonomy" `Quick test_e2e_health_and_errors;
    Alcotest.test_case "e2e: Fig. 4 over HTTP, bit-identical" `Quick
      test_e2e_fig4_bit_identical;
    Alcotest.test_case "e2e: concurrent clients, one session" `Quick
      test_e2e_concurrent_clients;
    Alcotest.test_case "e2e: simulate campaign over HTTP" `Quick test_e2e_simulate;
    Alcotest.test_case "e2e: robustness (413, 408, garbage)" `Quick test_e2e_robustness;
    Alcotest.test_case "e2e: unix-domain socket" `Quick test_e2e_unix_socket;
    Alcotest.test_case "daemon: stop is idempotent" `Quick test_stop_idempotent;
  ]
