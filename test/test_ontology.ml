(* Unit and property tests for the ScenarioML ontology. *)

let sample =
  let open Ontology.Build in
  create ~id:"o" ~name:"Sample"
  |> add_class ~id:"actor" ~name:"Actor"
  |> add_class ~id:"user" ~name:"User" ~super:"actor"
  |> add_class ~id:"admin" ~name:"Admin" ~super:"user"
  |> add_class ~id:"thing" ~name:"Thing"
  |> add_individual ~id:"alice" ~name:"Alice" ~cls:"admin"
  |> add_individual ~id:"bob" ~name:"Bob" ~cls:"user"
  |> add_event_type ~id:"acts" ~name:"acts" ~actor:"actor"
       ~params:[ ("what", "thing") ]
       ~template:"Someone acts on {what}"
  |> add_event_type ~id:"edits" ~name:"edits" ~super:"acts"
       ~params:[ ("how", "thing") ]
       ~template:"Edits {what} by {how}"
  |> add_term ~id:"glossary-x" ~name:"X" ~definition:"a thing called X"

let test_lookup () =
  Alcotest.(check bool) "class" true (Ontology.Types.find_class sample "user" <> None);
  Alcotest.(check bool) "individual" true
    (Ontology.Types.find_individual sample "alice" <> None);
  Alcotest.(check bool) "event" true (Ontology.Types.find_event_type sample "edits" <> None);
  Alcotest.(check bool) "term" true (Ontology.Types.find_term sample "glossary-x" <> None);
  Alcotest.(check bool) "missing" true (Ontology.Types.find_class sample "ghost" = None);
  Alcotest.(check int) "size" 9 (Ontology.Types.size sample)

let test_duplicate_rejected () =
  Alcotest.check_raises "duplicate id" (Ontology.Build.Duplicate "user") (fun () ->
      ignore (Ontology.Build.add_class ~id:"user" ~name:"Again" sample))

let test_merge () =
  let other =
    Ontology.Build.create ~id:"p" ~name:"Other"
    |> Ontology.Build.add_class ~id:"fresh" ~name:"Fresh"
  in
  let merged = Ontology.Build.merge sample other in
  Alcotest.(check bool) "both present" true
    (Ontology.Types.find_class merged "fresh" <> None
    && Ontology.Types.find_class merged "user" <> None);
  Alcotest.check_raises "collision" (Ontology.Build.Duplicate "actor") (fun () ->
      ignore
        (Ontology.Build.merge sample
           (Ontology.Build.create ~id:"q" ~name:"Q"
           |> Ontology.Build.add_class ~id:"actor" ~name:"Clash")))

let test_subsumption () =
  Alcotest.(check (list string)) "ancestors" [ "user"; "actor" ]
    (Ontology.Subsume.class_ancestors sample "admin");
  Alcotest.(check bool) "reflexive" true
    (Ontology.Subsume.class_subsumes sample ~super:"user" ~sub:"user");
  Alcotest.(check bool) "transitive" true
    (Ontology.Subsume.class_subsumes sample ~super:"actor" ~sub:"admin");
  Alcotest.(check bool) "not symmetric" false
    (Ontology.Subsume.class_subsumes sample ~super:"admin" ~sub:"actor");
  Alcotest.(check (list string)) "descendants" [ "user"; "admin" ]
    (Ontology.Subsume.class_descendants sample "actor");
  Alcotest.(check bool) "event subsume" true
    (Ontology.Subsume.event_subsumes sample ~super:"acts" ~sub:"edits")

let test_event_roots_and_common_ancestor () =
  Alcotest.(check (list string)) "roots" [ "acts" ]
    (List.map (fun e -> e.Ontology.Types.event_id) (Ontology.Subsume.event_roots sample));
  Alcotest.(check (option string)) "common" (Some "acts")
    (Ontology.Subsume.common_event_ancestor sample "edits" "acts");
  Alcotest.(check (option string)) "self" (Some "edits")
    (Ontology.Subsume.common_event_ancestor sample "edits" "edits")

let test_inherited_params () =
  let edits = Ontology.Types.event_type_exn sample "edits" in
  let params = Ontology.Subsume.inherited_params sample edits in
  Alcotest.(check (list string)) "inherited then own" [ "what"; "how" ]
    (List.map (fun p -> p.Ontology.Types.param_name) params)

let test_individuals_of_class () =
  Alcotest.(check (list string)) "subsumed individuals" [ "alice"; "bob" ]
    (List.map
       (fun i -> i.Ontology.Types.ind_id)
       (Ontology.Subsume.individuals_of_class sample "user"));
  Alcotest.(check int) "admins only" 1
    (List.length (Ontology.Subsume.individuals_of_class sample "admin"))

let test_template_expansion () =
  let acts = Ontology.Types.event_type_exn sample "acts" in
  Alcotest.(check string) "expanded" "Someone acts on the door"
    (Ontology.Types.expand_template acts [ ("what", "the door") ]);
  Alcotest.(check string) "unbound kept" "Someone acts on {what}"
    (Ontology.Types.expand_template acts []);
  let weird =
    { acts with Ontology.Types.template = "{a}{a} and {b" }
  in
  Alcotest.(check string) "double and dangling" "xx and {b"
    (Ontology.Types.expand_template weird [ ("a", "x") ])

let test_placeholders () =
  Alcotest.(check (list string)) "found" [ "a"; "b" ]
    (Ontology.Wellformed.placeholders "{a} then {b} then {a}")

let test_wellformed_ok () =
  Alcotest.(check (list string)) "no problems" []
    (List.map Ontology.Wellformed.problem_to_string (Ontology.Wellformed.check sample))

let test_wellformed_problems () =
  let has_problem ontology predicate =
    List.exists predicate (Ontology.Wellformed.check ontology)
  in
  let base = Ontology.Build.create ~id:"w" ~name:"W" in
  let unknown_super =
    Ontology.Build.add_class ~id:"c" ~name:"C" ~super:"ghost" base
  in
  Alcotest.(check bool) "unknown class super" true
    (has_problem unknown_super (function
      | Ontology.Wellformed.Unknown_class_super _ -> true
      | _ -> false));
  let cyclic =
    {
      sample with
      Ontology.Types.classes =
        List.map
          (fun c ->
            if String.equal c.Ontology.Types.class_id "actor" then
              { c with Ontology.Types.class_super = Some "admin" }
            else c)
          sample.Ontology.Types.classes;
    }
  in
  Alcotest.(check bool) "class cycle" true
    (has_problem cyclic (function Ontology.Wellformed.Class_cycle _ -> true | _ -> false));
  let bad_ind =
    Ontology.Build.add_individual ~id:"i" ~name:"I" ~cls:"ghost" base
  in
  Alcotest.(check bool) "unknown individual class" true
    (has_problem bad_ind (function
      | Ontology.Wellformed.Unknown_individual_class _ -> true
      | _ -> false));
  let bad_param =
    Ontology.Build.add_event_type ~id:"e" ~name:"E" ~params:[ ("p", "ghost") ]
      ~template:"x {p}" base
  in
  Alcotest.(check bool) "unknown param class" true
    (has_problem bad_param (function
      | Ontology.Wellformed.Unknown_param_class _ -> true
      | _ -> false));
  let bad_actor =
    Ontology.Build.add_event_type ~id:"e" ~name:"E" ~actor:"ghost" ~template:"x" base
  in
  Alcotest.(check bool) "unknown actor" true
    (has_problem bad_actor (function
      | Ontology.Wellformed.Unknown_actor_class _ -> true
      | _ -> false));
  let empty_template = Ontology.Build.add_event_type ~id:"e" ~name:"E" ~template:"  " base in
  Alcotest.(check bool) "empty template" true
    (has_problem empty_template (function
      | Ontology.Wellformed.Empty_template _ -> true
      | _ -> false));
  let unbound =
    Ontology.Build.add_event_type ~id:"e" ~name:"E" ~template:"uses {ghost}" base
  in
  Alcotest.(check bool) "unbound placeholder" true
    (has_problem unbound (function
      | Ontology.Wellformed.Unbound_placeholder _ -> true
      | _ -> false))

let test_xml_roundtrip () =
  let xml = Ontology.Xml_io.to_string sample in
  let reparsed = Ontology.Xml_io.of_string xml in
  Alcotest.(check int) "same size" (Ontology.Types.size sample)
    (Ontology.Types.size reparsed);
  Alcotest.(check bool) "same content" true (reparsed = sample)

let test_xml_malformed () =
  Alcotest.(check bool) "wrong root" true
    (match Ontology.Xml_io.of_string "<wrong id=\"a\" name=\"b\"/>" with
    | exception Ontology.Xml_io.Malformed _ -> true
    | _ -> false);
  Alcotest.(check bool) "missing template" true
    (match
       Ontology.Xml_io.of_string
         "<ontology id=\"o\" name=\"n\"><eventType id=\"e\" name=\"e\"/></ontology>"
     with
    | exception Ontology.Xml_io.Malformed _ -> true
    | _ -> false)

let test_pretty () =
  let s = Ontology.Pretty.to_string sample in
  Alcotest.(check bool) "mentions classes" true
    (Testutil.contains s "instanceType user");
  Alcotest.(check bool) "mentions events" true
    (Testutil.contains s "eventType edits");
  Alcotest.(check bool) "summary counts" true
    (Testutil.contains (Ontology.Pretty.summary sample) "4 classes")

(* --- property: subsumption on random forests agrees with the chain oracle --- *)

let gen_forest =
  (* classes c0..c(n-1); each may have a super among strictly earlier
     ones, guaranteeing acyclicity *)
  QCheck2.Gen.(
    let* n = int_range 1 15 in
    let* supers =
      flatten_l
        (List.init n (fun i ->
             if i = 0 then return None
             else
               let* pick = int_range (-1) (i - 1) in
               return (if pick < 0 then None else Some pick)))
    in
    return (n, supers))

let forest_ontology (n, supers) =
  let name i = Printf.sprintf "c%d" i in
  List.fold_left
    (fun o i ->
      let super = Option.map name (List.nth supers i) in
      Ontology.Build.add_class ?super ~id:(name i) ~name:(name i) o)
    (Ontology.Build.create ~id:"rand" ~name:"Random")
    (List.init n (fun i -> i))

let prop_subsumption =
  QCheck2.Test.make ~name:"class subsumption equals the super-chain oracle" ~count:100
    gen_forest (fun ((n, supers) as forest) ->
      let ontology = forest_ontology forest in
      let name i = Printf.sprintf "c%d" i in
      let rec chain i acc =
        match List.nth supers i with Some p -> chain p (p :: acc) | None -> acc
      in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              let expected = i = j || List.exists (Int.equal j) (chain i []) in
              Bool.equal expected
                (Ontology.Subsume.class_subsumes ontology ~super:(name j) ~sub:(name i)))
            (List.init n (fun j -> j)))
        (List.init n (fun i -> i)))

let prop_wellformed_random_forest =
  QCheck2.Test.make ~name:"acyclic random forests are well-formed" ~count:100 gen_forest
    (fun forest -> Ontology.Wellformed.is_wellformed (forest_ontology forest))

let suite =
  [
    Alcotest.test_case "lookups and size" `Quick test_lookup;
    Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "class and event subsumption" `Quick test_subsumption;
    Alcotest.test_case "event roots and common ancestor" `Quick
      test_event_roots_and_common_ancestor;
    Alcotest.test_case "inherited parameters" `Quick test_inherited_params;
    Alcotest.test_case "individuals of a class" `Quick test_individuals_of_class;
    Alcotest.test_case "template expansion" `Quick test_template_expansion;
    Alcotest.test_case "placeholder scanning" `Quick test_placeholders;
    Alcotest.test_case "well-formed sample" `Quick test_wellformed_ok;
    Alcotest.test_case "each well-formedness problem detected" `Quick
      test_wellformed_problems;
    Alcotest.test_case "XML round trip" `Quick test_xml_roundtrip;
    Alcotest.test_case "malformed XML rejected" `Quick test_xml_malformed;
    Alcotest.test_case "pretty printing" `Quick test_pretty;
    QCheck_alcotest.to_alcotest prop_subsumption;
    QCheck_alcotest.to_alcotest prop_wellformed_random_forest;
  ]
