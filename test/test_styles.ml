(* Tests for the architectural style rules. *)

let rule_ids violations = List.sort_uniq String.compare (List.map (fun v -> v.Styles.Rule.rule) violations)

(* ------------------------------ layered --------------------------- *)

let layered ?(skip = false) () =
  (* 3 layers; when [skip] is set, an extra edge jumps from layer 3 to
     layer 1 directly *)
  let open Adl.Build in
  let t =
    create ~style:"layered" ~id:"l" ~name:"Layered" ()
    |> add_component ~id:"ui" ~name:"UI" ~tags:[ ("layer", "3") ]
    |> add_component ~id:"logic" ~name:"Logic" ~tags:[ ("layer", "2") ]
    |> add_component ~id:"store" ~name:"Store" ~tags:[ ("layer", "1") ]
    |> fun t ->
    biconnect t "ui" "logic" |> fun t -> biconnect t "logic" "store"
  in
  if skip then Adl.Build.biconnect t "ui" "store" else t

let test_layered_ok () =
  Alcotest.(check (list string)) "clean" [] (rule_ids (Styles.Check.check_declared (layered ())))

let test_layered_skip () =
  let violations = Styles.Check.check_declared (layered ~skip:true ()) in
  Alcotest.(check bool) "skip flagged" true (List.mem "layered.skip" (rule_ids violations))

let test_layered_tag () =
  let arch = Adl.Build.add_component ~id:"untagged" ~name:"U" (layered ()) in
  let arch = Adl.Build.biconnect arch "untagged" "logic" in
  let violations = Styles.Rule.check_all Styles.Layered.rules arch in
  Alcotest.(check bool) "tag flagged" true (List.mem "layered.tag" (rule_ids violations));
  (* external components are exempt *)
  let arch2 =
    Adl.Build.add_component ~id:"ext" ~name:"E" ~tags:[ ("external", "true") ] (layered ())
  in
  let arch2 = Adl.Build.biconnect arch2 "ext" "logic" in
  Alcotest.(check (list string)) "external exempt" []
    (rule_ids (Styles.Rule.check_all Styles.Layered.rules arch2))

let test_layered_strict () =
  (* bidirectional links mean upward communication exists: the strict
     variant flags it, the base rules do not *)
  let arch = layered () in
  Alcotest.(check (list string)) "base clean" []
    (rule_ids (Styles.Rule.check_all Styles.Layered.rules arch));
  let strict = Styles.Rule.check_all Styles.Layered.strict_rules arch in
  Alcotest.(check bool) "strict flags upward" true
    (List.mem "layered.strict" (rule_ids strict))

let test_layer_span () =
  Alcotest.(check (list (pair string int))) "span"
    [ ("ui", 3); ("logic", 2); ("store", 1) ]
    (Styles.Layered.layer_span (layered ()))

(* ------------------------------ C2 -------------------------------- *)

let test_c2_ok () =
  Alcotest.(check (list string)) "crash entity conforms" []
    (rule_ids (Styles.Check.check_declared Casestudies.Crash.entity_architecture))

let test_c2_violations () =
  let open Adl.Build in
  (* direct component-to-component link, no side tags *)
  let bad =
    create ~style:"c2" ~id:"b" ~name:"Bad" ()
    |> add_component ~id:"a" ~name:"A"
    |> add_component ~id:"b" ~name:"B"
    |> fun t -> biconnect t "a" "b"
  in
  let ids = rule_ids (Styles.Check.check_declared bad) in
  Alcotest.(check bool) "no-direct" true (List.mem "c2.no-direct" ids);
  Alcotest.(check bool) "side" true (List.mem "c2.side" ids);
  (* top wired to top *)
  let twisted =
    create ~style:"c2" ~id:"t" ~name:"Twisted" ()
    |> add_component ~id:"a" ~name:"A"
         ~interfaces:
           [
             interface ~direction:Adl.Structure.In_out ~tags:[ ("side", "top") ] "i";
           ]
    |> add_connector ~id:"k" ~name:"K"
         ~interfaces:
           [
             interface ~direction:Adl.Structure.In_out ~tags:[ ("side", "top") ] "i";
           ]
    |> add_link ~from_:("a", "i") ~to_:("k", "i")
  in
  Alcotest.(check bool) "topology" true
    (List.mem "c2.topology" (rule_ids (Styles.Check.check_declared twisted)))

(* ------------------------------ client-server --------------------- *)

let client_server ~direct =
  let open Adl.Build in
  let t =
    create ~style:"client-server" ~id:"cs" ~name:"CS" ()
    |> add_component ~id:"c1" ~name:"Client 1" ~tags:[ ("role", "client") ]
    |> add_component ~id:"c2" ~name:"Client 2" ~tags:[ ("role", "client") ]
    |> add_component ~id:"srv" ~name:"Server" ~tags:[ ("role", "server") ]
    |> fun t ->
    biconnect t "c1" "srv" |> fun t -> biconnect t "c2" "srv"
  in
  if direct then Adl.Build.biconnect t "c1" "c2" else t

let test_cs_ok () =
  Alcotest.(check (list string)) "mediated clients fine" []
    (rule_ids (Styles.Check.check_declared (client_server ~direct:false)))

let test_cs_bypass () =
  (* the paper's 3.5 example: "Clients need to communicate through a
     central server" violated by a direct client-client link *)
  let violations = Styles.Check.check_declared (client_server ~direct:true) in
  Alcotest.(check bool) "bypass flagged" true
    (List.mem "cs.no-client-client" (rule_ids violations))

let test_cs_role_and_reach () =
  let open Adl.Build in
  let arch =
    create ~style:"client-server" ~id:"cs2" ~name:"CS2" ()
    |> add_component ~id:"c1" ~name:"C1" ~tags:[ ("role", "client") ]
    |> add_component ~id:"x" ~name:"X"
  in
  let ids = rule_ids (Styles.Check.check_declared arch) in
  Alcotest.(check bool) "role missing" true (List.mem "cs.role" ids);
  Alcotest.(check bool) "server unreachable" true (List.mem "cs.server-reach" ids)

(* ------------------------------ pipe-filter ----------------------- *)

let test_pf_ok () =
  let open Adl.Build in
  let arch =
    create ~style:"pipe-filter" ~id:"pf" ~name:"PF" ()
    |> add_component ~id:"src" ~name:"Source"
    |> add_component ~id:"sink" ~name:"Sink"
    |> add_connector ~id:"pipe" ~name:"Pipe"
    |> fun t -> connect ~via:"pipe" t "src" "sink"
  in
  Alcotest.(check (list string)) "clean" [] (rule_ids (Styles.Check.check_declared arch))

let test_pf_violations () =
  let open Adl.Build in
  let direct =
    create ~style:"pipe-filter" ~id:"pf2" ~name:"PF2" ()
    |> add_component ~id:"a" ~name:"A"
    |> add_component ~id:"b" ~name:"B"
    |> fun t -> biconnect t "a" "b"
  in
  Alcotest.(check bool) "filters linked directly" true
    (List.mem "pf.mediated" (rule_ids (Styles.Check.check_declared direct)));
  let cyclic =
    create ~style:"pipe-filter" ~id:"pf3" ~name:"PF3" ()
    |> add_component ~id:"a" ~name:"A"
    |> add_component ~id:"b" ~name:"B"
    |> add_connector ~id:"p1" ~name:"P1"
    |> add_connector ~id:"p2" ~name:"P2"
    |> fun t ->
    connect ~via:"p1" t "a" "b" |> fun t -> connect ~via:"p2" t "b" "a"
  in
  Alcotest.(check bool) "cycle" true
    (List.mem "pf.acyclic" (rule_ids (Styles.Check.check_declared cyclic)));
  let fat_pipe =
    create ~style:"pipe-filter" ~id:"pf4" ~name:"PF4" ()
    |> add_component ~id:"a" ~name:"A"
    |> add_component ~id:"b" ~name:"B"
    |> add_component ~id:"c" ~name:"C"
    |> add_connector ~id:"p" ~name:"P"
    |> fun t ->
    connect ~via:"p" t "a" "b" |> fun t -> biconnect t "c" "p"
  in
  Alcotest.(check bool) "pipe arity" true
    (List.mem "pf.pipe-arity" (rule_ids (Styles.Check.check_declared fat_pipe)))

(* ------------------------------ registry -------------------------- *)

let test_registry () =
  Alcotest.(check (list string)) "known styles"
    [ "layered"; "layered-strict"; "c2"; "client-server"; "pipe-filter" ]
    Styles.Check.known_styles;
  Alcotest.(check bool) "unknown style conforms vacuously" true
    (Styles.Check.conforms (layered ()) "baroque");
  Alcotest.(check bool) "undeclared style unchecked" true
    (Styles.Check.check_declared
       (Adl.Build.create ~id:"plain" ~name:"Plain" ())
    = []);
  Alcotest.(check bool) "conforms" true (Styles.Check.conforms (layered ()) "layered");
  Alcotest.(check bool) "does not conform" false
    (Styles.Check.conforms (layered ~skip:true ()) "layered")

let suite =
  [
    Alcotest.test_case "layered: clean stack" `Quick test_layered_ok;
    Alcotest.test_case "layered: layer skipping flagged" `Quick test_layered_skip;
    Alcotest.test_case "layered: missing tags, external exemption" `Quick test_layered_tag;
    Alcotest.test_case "layered: strict variant" `Quick test_layered_strict;
    Alcotest.test_case "layered: layer span" `Quick test_layer_span;
    Alcotest.test_case "c2: CRASH entity conforms" `Quick test_c2_ok;
    Alcotest.test_case "c2: violations" `Quick test_c2_violations;
    Alcotest.test_case "client-server: mediated clients" `Quick test_cs_ok;
    Alcotest.test_case "client-server: bypass (paper 3.5)" `Quick test_cs_bypass;
    Alcotest.test_case "client-server: roles and reach" `Quick test_cs_role_and_reach;
    Alcotest.test_case "pipe-filter: clean pipeline" `Quick test_pf_ok;
    Alcotest.test_case "pipe-filter: violations" `Quick test_pf_violations;
    Alcotest.test_case "style registry" `Quick test_registry;
  ]
