(* End-to-end tests driving the actual sosae binary (made available by
   the dune (deps ...) clause as ../bin/sosae.exe). *)

let sosae = "../bin/sosae.exe"

let workdir = lazy (Filename.temp_file "sosae-cli" "" |> fun f ->
  Sys.remove f;
  Sys.mkdir f 0o755;
  f)

let artifact name = Filename.concat (Lazy.force workdir) name

let run ?(expect = 0) args =
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" sosae (String.concat " " args)
      (Filename.quote (artifact "last-output.txt"))
  in
  let code = Sys.command cmd in
  if code <> expect then begin
    let ic = open_in (artifact "last-output.txt") in
    let n = in_channel_length ic in
    let out = really_input_string ic n in
    close_in ic;
    Alcotest.failf "`sosae %s` exited %d (expected %d):\n%s" (String.concat " " args) code
      expect out
  end

let last_output () =
  let ic = open_in (artifact "last-output.txt") in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let std_args =
  lazy
    [
      "-s";
      artifact "pims-scenarios.xml";
      "-a";
      artifact "pims-architecture.xml";
      "-m";
      artifact "pims-mapping.xml";
    ]

let test_save_demo_and_validate () =
  run [ "save-demo"; Lazy.force workdir ];
  Alcotest.(check bool) "scenarios written" true
    (Sys.file_exists (artifact "pims-scenarios.xml"));
  Alcotest.(check bool) "behavior written" true
    (Sys.file_exists (artifact "pims-behavior.xml"));
  run ("validate" :: Lazy.force std_args);
  Testutil.check_contains "validation output" (last_output ()) "all artifacts valid"

let test_evaluate () =
  run ("evaluate" :: Lazy.force std_args);
  Testutil.check_contains "overall verdict" (last_output ()) "Overall: CONSISTENT";
  run ("evaluate" :: Lazy.force std_args @ [ "--scenario"; "get-share-prices" ]);
  Testutil.check_contains "single scenario" (last_output ()) "get-share-prices";
  run ~expect:2 ("evaluate" :: Lazy.force std_args @ [ "--scenario"; "nope" ])

let test_evaluate_broken_architecture () =
  (* write the Fig. 4 broken architecture and expect exit 1 *)
  let oc = open_out_bin (artifact "broken.xml") in
  output_string oc (Adl.Xml_io.to_string Casestudies.Pims.broken_architecture);
  close_out oc;
  run ~expect:1
    [
      "evaluate";
      "-s";
      artifact "pims-scenarios.xml";
      "-a";
      artifact "broken.xml";
      "-m";
      artifact "pims-mapping.xml";
      "--scenario";
      "get-share-prices";
    ];
  Testutil.check_contains "failure detail" (last_output ()) "no communication path"

let test_behavioral_flag () =
  run
    ("evaluate" :: Lazy.force std_args
    @ [ "-b"; artifact "pims-behavior.xml"; "--scenario"; "get-share-prices" ]);
  Testutil.check_contains "behavioral section" (last_output ()) "behavioral walkthrough"

let test_reporting_commands () =
  run ("table" :: Lazy.force std_args);
  Testutil.check_contains "table mark" (last_output ()) "X";
  run ("stats" :: Lazy.force std_args);
  Testutil.check_contains "reuse factor" (last_output ()) "reuse factor";
  run ("rank" :: Lazy.force std_args @ [ "--top"; "3" ]);
  run ("relations" :: Lazy.force std_args);
  run ("implied" :: Lazy.force std_args);
  Testutil.check_contains "implied count" (last_output ()) "implied event-type successions";
  run ("coverage" :: Lazy.force std_args);
  Testutil.check_contains "coverage" (last_output ()) "Component coverage";
  run ("report" :: Lazy.force std_args @ [ "-o"; artifact "report.md" ]);
  Alcotest.(check bool) "report written" true (Sys.file_exists (artifact "report.md"))

let test_dot_and_owl () =
  run [ "dot"; artifact "pims-architecture.xml"; "--highlight"; "loader" ];
  Testutil.check_contains "dot output" (last_output ()) "digraph";
  run ("export-owl" :: Lazy.force std_args @ [ "-o"; artifact "model.ttl" ]);
  Alcotest.(check bool) "turtle written" true (Sys.file_exists (artifact "model.ttl"))

let test_evaluate_json () =
  run ("evaluate" :: Lazy.force std_args @ [ "--json" ]);
  let out = last_output () in
  Testutil.check_contains "overall flag" out "\"consistent\":true";
  Testutil.check_contains "scenario array" out "\"scenarios\":[";
  run ~expect:1
    [
      "evaluate";
      "-s";
      artifact "pims-scenarios.xml";
      "-a";
      artifact "broken.xml";
      "-m";
      artifact "pims-mapping.xml";
      "--json";
      "--scenario";
      "get-share-prices";
    ];
  let out = last_output () in
  Testutil.check_contains "verdict field" out "\"verdict\":\"inconsistent\"";
  Testutil.check_contains "inconsistency kind" out "\"kind\":\"missing-link\""

let test_session_subcommand () =
  (* the Fig. 4 experiment as an incremental session: excise the
     Loader / Data Access link and re-evaluate *)
  run ~expect:1
    ("session" :: Lazy.force std_args @ [ "--excise"; "loader,data-access" ]);
  let out = last_output () in
  Testutil.check_contains "initial round" out "-- initial architecture --";
  Testutil.check_contains "edit round" out "after excising loader -- data-access";
  Testutil.check_contains "prices fail" out "get-share-prices: INCONSISTENT";
  Testutil.check_contains "portfolio kept" out "create-portfolio: CONSISTENT";
  Testutil.check_contains "cache served" out "served 19 from cache";
  Testutil.check_contains "stats line" out "evaluations:";
  (* evolving back to the intact architecture heals the verdict *)
  run
    ("session" :: Lazy.force std_args
    @ [
        "--excise"; "loader,data-access"; "--then"; artifact "pims-architecture.xml";
      ]);
  Testutil.check_contains "healed" (last_output ()) "re-evaluated 3 scenario(s)";
  run ~expect:2
    ("session" :: Lazy.force std_args @ [ "--excise"; "loader,nope" ]);
  Testutil.check_contains "unknown pair" (last_output ()) "no link between";
  run ~expect:1
    ("session" :: Lazy.force std_args @ [ "--json"; "--excise"; "loader,data-access" ]);
  let out = last_output () in
  Testutil.check_contains "json round" out "\"round\":\"initial architecture\"";
  Testutil.check_contains "json served" out "\"served_from_cache\":19"

let test_prose () =
  let oc = open_out_bin (artifact "scenario.txt") in
  output_string oc "Scenario: From the CLI\n(1) Something happens.\n";
  close_out oc;
  run [ "prose"; artifact "scenario.txt" ];
  Testutil.check_contains "scenario xml" (last_output ()) "<scenario id=\"from-the-cli\"";
  run [ "demo"; "pims" ];
  Testutil.check_contains "demo" (last_output ()) "after excising"

(* `simulate` must be bit-for-bit reproducible: same seed, same stdout,
   whatever the jobs fan-out. Timing goes to stderr precisely so this
   holds, so capture stdout alone here (unlike [run]). *)
let test_simulate_reproducible () =
  let capture name args =
    let path = artifact name in
    let cmd =
      Printf.sprintf "%s %s > %s 2> /dev/null" sosae (String.concat " " args)
        (Filename.quote path)
    in
    let code = Sys.command cmd in
    if code <> 0 then
      Alcotest.failf "`sosae %s` exited %d" (String.concat " " args) code;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let base = [ "simulate"; "crash"; "--trials"; "80"; "--seed"; "11"; "--json" ] in
  let first = capture "sim1.json" base in
  Testutil.check_contains "report present" first "\"completion_rate\"";
  Testutil.check_contains "case echoed" first "\"case\":\"crash\"";
  Alcotest.(check string) "same seed, same bytes" first (capture "sim2.json" base);
  Alcotest.(check string) "--jobs 4 = --jobs 1" first
    (capture "sim4.json" (base @ [ "--jobs"; "4" ]));
  let other = capture "sim-other.json" [ "simulate"; "pims"; "--trials"; "20"; "--json" ] in
  Testutil.check_contains "pims case runs too" other "\"case\":\"pims\"";
  (* text mode mentions the confidence interval *)
  run [ "simulate"; "crash"; "--trials"; "20" ];
  Testutil.check_contains "text report" (last_output ()) "95% CI"

let suite =
  [
    Alcotest.test_case "save-demo + validate" `Quick test_save_demo_and_validate;
    Alcotest.test_case "evaluate (whole set, one scenario, unknown)" `Quick test_evaluate;
    Alcotest.test_case "evaluate the broken architecture" `Quick
      test_evaluate_broken_architecture;
    Alcotest.test_case "behavioral flag" `Quick test_behavioral_flag;
    Alcotest.test_case "table/stats/rank/relations/implied/coverage/report" `Quick
      test_reporting_commands;
    Alcotest.test_case "dot and export-owl" `Quick test_dot_and_owl;
    Alcotest.test_case "evaluate --json" `Quick test_evaluate_json;
    Alcotest.test_case "session (excise + evolve + json)" `Quick test_session_subcommand;
    Alcotest.test_case "prose and demo" `Quick test_prose;
    Alcotest.test_case "simulate is bit-for-bit reproducible" `Quick
      test_simulate_reproducible;
  ]
