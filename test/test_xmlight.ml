(* Unit and property tests for the XML substrate. *)

let parse_ok s =
  match Xmlight.Parse.parse s with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse error: %s" (Xmlight.Parse.error_to_string e)

let parse_err s =
  match Xmlight.Parse.parse s with
  | Ok _ -> Alcotest.failf "expected a parse error on %S" s
  | Error e -> e

let test_minimal () =
  let doc = parse_ok "<root/>" in
  Alcotest.(check string) "tag" "root" doc.Xmlight.Doc.root.Xmlight.Doc.tag;
  Alcotest.(check int) "no children" 0 (List.length doc.Xmlight.Doc.root.Xmlight.Doc.children)

let test_declaration () =
  let doc = parse_ok "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>" in
  Alcotest.(check int) "decl attrs" 2 (List.length doc.Xmlight.Doc.decl)

let test_attributes () =
  let doc = parse_ok "<a x=\"1\" y='two' z=\"a&amp;b\"/>" in
  let root = doc.Xmlight.Doc.root in
  Alcotest.(check (option string)) "x" (Some "1") (Xmlight.Doc.attr root "x");
  Alcotest.(check (option string)) "y" (Some "two") (Xmlight.Doc.attr root "y");
  Alcotest.(check (option string)) "z" (Some "a&b") (Xmlight.Doc.attr root "z");
  Alcotest.(check (option string)) "missing" None (Xmlight.Doc.attr root "w");
  Alcotest.(check string) "default" "d" (Xmlight.Doc.attr_default root "w" "d")

let test_text_and_entities () =
  let doc = parse_ok "<a>x &lt;&gt; &amp; &quot;&apos; y</a>" in
  Alcotest.(check string) "text" "x <> & \"' y" (Xmlight.Doc.child_text doc.Xmlight.Doc.root)

let test_numeric_entities () =
  let doc = parse_ok "<a>&#65;&#x42;</a>" in
  Alcotest.(check string) "decoded" "AB" (Xmlight.Doc.child_text doc.Xmlight.Doc.root)

let test_nested_structure () =
  let doc = parse_ok "<a><b><c/></b><b/><d>t</d></a>" in
  let root = doc.Xmlight.Doc.root in
  Alcotest.(check int) "bs" 2 (List.length (Xmlight.Doc.find_children root "b"));
  Alcotest.(check bool) "c under first b" true
    (match Xmlight.Doc.find_child root "b" with
    | Some b -> Xmlight.Doc.find_child b "c" <> None
    | None -> false);
  Alcotest.(check int) "node count" 5 (Xmlight.Doc.node_count root)

let test_comments_and_pi () =
  let doc = parse_ok "<!-- before --><a><!-- in --><?target data?><b/></a><!-- after -->" in
  let root = doc.Xmlight.Doc.root in
  Alcotest.(check int) "element children" 1 (List.length (Xmlight.Doc.children_elements root))

let test_cdata () =
  let doc = parse_ok "<a><![CDATA[<raw> & stuff]]></a>" in
  Alcotest.(check string) "cdata text" "<raw> & stuff"
    (Xmlight.Doc.child_text doc.Xmlight.Doc.root)

let test_doctype_skipped () =
  let doc = parse_ok "<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a/>" in
  Alcotest.(check string) "root" "a" doc.Xmlight.Doc.root.Xmlight.Doc.tag

let test_errors () =
  let e = parse_err "<a><b></a>" in
  Alcotest.(check bool) "mismatch mentioned" true
    (String.length e.Xmlight.Parse.message > 0);
  ignore (parse_err "<a>");
  ignore (parse_err "");
  ignore (parse_err "<a/><b/>");
  ignore (parse_err "<a x=1/>");
  ignore (parse_err "<a>&unknown;</a>")

let test_error_position () =
  let e = parse_err "<a>\n  <b>\n</a>" in
  Alcotest.(check bool) "line > 1" true (e.Xmlight.Parse.position.Xmlight.Parse.line > 1)

let test_print_escapes () =
  Alcotest.(check string) "text" "a&amp;b&lt;c&gt;" (Xmlight.Print.escape_text "a&b<c>");
  Alcotest.(check string) "attr" "&quot;x&apos;" (Xmlight.Print.escape_attr "\"x'")

let test_print_parse_roundtrip () =
  let e =
    Xmlight.Doc.element ~attrs:[ ("id", "r&d"); ("n", "<1>") ] "root"
      [
        Xmlight.Doc.elt "inline" [ Xmlight.Doc.text "hello <world> & co" ];
        Xmlight.Doc.elt ~attrs:[ ("k", "v") ] "empty" [];
        Xmlight.Doc.elt "nested" [ Xmlight.Doc.elt "deep" [ Xmlight.Doc.text "t" ] ];
      ]
  in
  let printed = Xmlight.Print.to_string (Xmlight.Doc.doc e) in
  let reparsed = parse_ok printed in
  Alcotest.(check bool) "equal" true (Xmlight.Doc.equal_element e reparsed.Xmlight.Doc.root)

let test_query_path () =
  let doc = parse_ok "<a><b><c i=\"1\"/><c i=\"2\"/></b><b><c i=\"3\"/></b></a>" in
  let root = doc.Xmlight.Doc.root in
  Alcotest.(check int) "path b c" 3 (List.length (Xmlight.Query.path root [ "b"; "c" ]));
  Alcotest.(check int) "filtered" 1
    (List.length (Xmlight.Query.with_attr "i" "2" (Xmlight.Query.path root [ "b"; "c" ])));
  Alcotest.(check bool) "by_id" true
    (Xmlight.Query.by_id root ~id_attr:"i" "3" <> None);
  Alcotest.(check bool) "by_id missing" true
    (Xmlight.Query.by_id root ~id_attr:"i" "9" = None);
  Alcotest.(check bool) "first" true (Xmlight.Query.first root [ "b" ] <> None)

let test_descendants () =
  let doc = parse_ok "<a><b><a/></b><a><a/></a></a>" in
  Alcotest.(check int) "descendant a" 3
    (List.length (Xmlight.Doc.descendants doc.Xmlight.Doc.root "a"))

(* --- property: print . parse = id on random documents --- *)

let gen_name =
  QCheck2.Gen.(
    let* first = oneofl [ 'a'; 'b'; 'x'; 't' ] in
    let* rest = string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; '1'; '-' ]) (int_range 0 6) in
    return (Printf.sprintf "%c%s" first rest))

let gen_text =
  QCheck2.Gen.string_size
    ~gen:(QCheck2.Gen.oneofl [ 'a'; 'z'; ' '; '&'; '<'; '>'; '"'; '\'' ])
    (QCheck2.Gen.int_range 1 12)

let gen_element =
  QCheck2.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self n ->
        let* tag = gen_name in
        let* attrs =
          list_size (int_range 0 3)
            (let* k = gen_name in
             let* v = gen_text in
             return (k, v))
        in
        (* attribute names must be unique within an element *)
        let attrs =
          List.fold_left
            (fun acc (k, v) -> if List.mem_assoc k acc then acc else acc @ [ (k, v) ])
            [] attrs
        in
        if n = 0 then
          let* txt = gen_text in
          return (Xmlight.Doc.element ~attrs tag [ Xmlight.Doc.text txt ])
        else
          let* children = list_size (int_range 0 3) (self (n - 1)) in
          return
            (Xmlight.Doc.element ~attrs tag
               (List.map (fun c -> Xmlight.Doc.Element c) children))))

let prop_roundtrip =
  QCheck2.Test.make ~name:"print then parse preserves the document" ~count:200 gen_element
    (fun e ->
      let printed = Xmlight.Print.to_string (Xmlight.Doc.doc e) in
      match Xmlight.Parse.parse printed with
      | Ok doc -> Xmlight.Doc.equal_element e doc.Xmlight.Doc.root
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "minimal document" `Quick test_minimal;
    Alcotest.test_case "xml declaration" `Quick test_declaration;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "text and entities" `Quick test_text_and_entities;
    Alcotest.test_case "numeric entities" `Quick test_numeric_entities;
    Alcotest.test_case "nested structure" `Quick test_nested_structure;
    Alcotest.test_case "comments and processing instructions" `Quick test_comments_and_pi;
    Alcotest.test_case "cdata" `Quick test_cdata;
    Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
    Alcotest.test_case "malformed inputs rejected" `Quick test_errors;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "escaping" `Quick test_print_escapes;
    Alcotest.test_case "print/parse round trip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "query paths and filters" `Quick test_query_path;
    Alcotest.test_case "descendants" `Quick test_descendants;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
