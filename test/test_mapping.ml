(* Tests for the event-type-to-component mapping: construction,
   coverage, the complexity model, traceability, and XML. *)

let ontology =
  let open Ontology.Build in
  create ~id:"o" ~name:"O"
  |> add_class ~id:"thing" ~name:"Thing"
  |> add_event_type ~id:"base" ~name:"base" ~template:"base"
  |> add_event_type ~id:"sub" ~name:"sub" ~super:"base" ~template:"sub"
  |> add_event_type ~id:"other" ~name:"other" ~template:"other"

let architecture =
  let open Adl.Build in
  create ~id:"a" ~name:"A" ()
  |> add_component ~id:"c1" ~name:"C1" ~responsibilities:[ "r" ]
  |> add_component ~id:"c2" ~name:"C2" ~responsibilities:[ "r" ]
  |> add_component ~id:"c3" ~name:"C3" ~responsibilities:[ "r" ]
  |> fun t ->
  biconnect t "c1" "c2" |> fun t -> biconnect t "c2" "c3"

let mapping =
  let open Mapping.Build in
  create ~id:"m" ~ontology ~architecture
  |> map ~event_type:"base" ~to_:[ "c1"; "c2" ] ~rationale:"why"
  |> map ~event_type:"other" ~to_:[ "c3" ]

let test_accessors () =
  Alcotest.(check (list string)) "components" [ "c1"; "c2" ]
    (Mapping.Types.components_of mapping "base");
  Alcotest.(check (list string)) "unmapped" [] (Mapping.Types.components_of mapping "sub");
  Alcotest.(check (list string)) "inverse" [ "base" ]
    (Mapping.Types.event_types_of mapping "c2");
  Alcotest.(check (list string)) "mapped components" [ "c1"; "c2"; "c3" ]
    (Mapping.Types.mapped_components mapping);
  Alcotest.(check int) "links" 3 (Mapping.Types.link_count mapping)

let test_build () =
  Alcotest.check_raises "duplicate entry" (Mapping.Build.Duplicate "base") (fun () ->
      ignore (Mapping.Build.map ~event_type:"base" ~to_:[ "c3" ] mapping));
  let extended = Mapping.Build.extend ~event_type:"base" ~to_:[ "c3"; "c1" ] mapping in
  Alcotest.(check (list string)) "extended, deduplicated" [ "c1"; "c2"; "c3" ]
    (Mapping.Types.components_of extended "base");
  let fresh = Mapping.Build.extend ~event_type:"sub" ~to_:[ "c1" ] mapping in
  Alcotest.(check (list string)) "extend creates" [ "c1" ]
    (Mapping.Types.components_of fresh "sub");
  let unmapped = Mapping.Build.unmap_component "c2" mapping in
  Alcotest.(check (list string)) "component dropped" [ "c1" ]
    (Mapping.Types.components_of unmapped "base");
  let renamed_et = Mapping.Build.rename_event_type ~old_id:"base" ~new_id:"renamed" mapping in
  Alcotest.(check (list string)) "event type renamed" [ "c1"; "c2" ]
    (Mapping.Types.components_of renamed_et "renamed");
  let renamed_c = Mapping.Build.rename_component ~old_id:"c1" ~new_id:"z" mapping in
  Alcotest.(check (list string)) "component renamed" [ "z"; "c2" ]
    (Mapping.Types.components_of renamed_c "base")

let test_coverage_clean () =
  (* sub inherits base's mapping (paper 5), so coverage is total *)
  Alcotest.(check (list string)) "no problems" []
    (List.map Mapping.Coverage.problem_to_string
       (Mapping.Coverage.check ontology architecture mapping))

let test_coverage_problems () =
  let has m predicate = List.exists predicate (Mapping.Coverage.check ontology architecture m) in
  let empty = Mapping.Build.create ~id:"e" ~ontology ~architecture in
  Alcotest.(check bool) "unmapped event type" true
    (has empty (function Mapping.Coverage.Unmapped_event_type _ -> true | _ -> false));
  Alcotest.(check bool) "unmapped component" true
    (has empty (function Mapping.Coverage.Unmapped_component _ -> true | _ -> false));
  let ghost_et = Mapping.Build.map ~event_type:"ghost" ~to_:[ "c1" ] mapping in
  Alcotest.(check bool) "unknown event type" true
    (has ghost_et (function Mapping.Coverage.Unknown_event_type _ -> true | _ -> false));
  let ghost_c = Mapping.Build.map ~event_type:"sub" ~to_:[ "nowhere" ] mapping in
  Alcotest.(check bool) "unknown component" true
    (has ghost_c (function Mapping.Coverage.Unknown_component _ -> true | _ -> false));
  let hollow = Mapping.Build.map ~event_type:"sub" ~to_:[] mapping in
  Alcotest.(check bool) "entry without components" true
    (has hollow (function
      | Mapping.Coverage.Entry_without_components _ -> true
      | _ -> false))

let test_coverage_summary () =
  let s = Mapping.Coverage.summarize ontology architecture mapping in
  Alcotest.(check int) "event types mapped" 2 s.Mapping.Coverage.event_types_mapped;
  Alcotest.(check int) "event types total" 3 s.Mapping.Coverage.event_types_total;
  Alcotest.(check int) "components mapped" 3 s.Mapping.Coverage.components_mapped;
  Alcotest.(check int) "links" 3 s.Mapping.Coverage.links;
  Alcotest.(check (float 0.001)) "avg per event type" 1.5
    s.Mapping.Coverage.avg_components_per_event_type

let test_complexity_measure () =
  (* base occurs 4 times (2 components), other occurs 2 times (1). *)
  let usage = [ ("base", 4); ("other", 2) ] in
  let counts = Mapping.Complexity.measure mapping ~usage in
  Alcotest.(check int) "occurrences" 6 counts.Mapping.Complexity.occurrences;
  Alcotest.(check int) "definition links" 3 counts.Mapping.Complexity.definition_links;
  Alcotest.(check int) "with ontology" 9 counts.Mapping.Complexity.with_ontology;
  Alcotest.(check int) "without ontology" 10 counts.Mapping.Complexity.without_ontology;
  Alcotest.(check (float 0.001)) "reduction" (10.0 /. 9.0) counts.Mapping.Complexity.reduction

let test_complexity_sweep () =
  let sweep =
    Mapping.Complexity.sweep ~event_types:10 ~fanout:3 ~components:5 ~reuse:[ 1; 5; 20 ]
  in
  Alcotest.(check int) "three points" 3 (List.length sweep);
  (* the reduction factor grows monotonically with reuse *)
  let reductions = List.map (fun (_, c) -> c.Mapping.Complexity.reduction) sweep in
  (match reductions with
  | [ r1; r5; r20 ] ->
      Alcotest.(check bool) "monotone" true (r1 < r5 && r5 < r20);
      Alcotest.(check bool) "approaches fanout" true (r20 > 2.0 && r20 < 3.0)
  | _ -> Alcotest.fail "unexpected sweep shape");
  (* at reuse=1 with fanout f > 1 the ontology already wins or ties *)
  let _, c1 = List.hd sweep in
  Alcotest.(check bool) "reuse 1" true
    (c1.Mapping.Complexity.without_ontology >= c1.Mapping.Complexity.definition_links)

let test_trace_impact () =
  let impact = Mapping.Trace.of_event_type_change mapping "base" in
  Alcotest.(check (list string)) "components hit" [ "c1"; "c2" ]
    impact.Mapping.Trace.impacted_components;
  let impact = Mapping.Trace.of_component_change mapping "c2" in
  Alcotest.(check (list string)) "event types hit" [ "base" ]
    impact.Mapping.Trace.impacted_event_types;
  let impact = Mapping.Trace.of_arch_op mapping (Adl.Diff.Remove_component "c3") in
  Alcotest.(check (list string)) "removal impact" [ "other" ]
    impact.Mapping.Trace.impacted_event_types;
  let impact = Mapping.Trace.of_arch_op mapping (Adl.Diff.Remove_link "x") in
  Alcotest.(check (list string)) "link edits do not touch the mapping" []
    impact.Mapping.Trace.impacted_event_types

let test_trace_apply () =
  let synced = Mapping.Trace.apply_arch_op mapping (Adl.Diff.Remove_component "c2") in
  Alcotest.(check (list string)) "dropped from entries" [ "c1" ]
    (Mapping.Types.components_of synced "base");
  let synced =
    Mapping.Trace.apply_arch_op mapping
      (Adl.Diff.Rename_element { old_id = "c3"; new_id = "store" })
  in
  Alcotest.(check (list string)) "renamed in entries" [ "store" ]
    (Mapping.Types.components_of synced "other")

let test_xml_roundtrip () =
  let xml = Mapping.Xml_io.to_string mapping in
  Alcotest.(check bool) "identical" true (Mapping.Xml_io.of_string xml = mapping);
  Alcotest.(check bool) "wrong root rejected" true
    (match Mapping.Xml_io.of_string "<x id=\"a\" ontology=\"o\" architecture=\"a\"/>" with
    | exception Mapping.Xml_io.Malformed _ -> true
    | _ -> false)

let test_pretty_table () =
  let table =
    Mapping.Pretty.table_to_string
      ~event_type_label:(fun id -> "ET:" ^ id)
      ~component_label:(fun id -> "C:" ^ id)
      mapping
  in
  Testutil.check_contains "row label" table "ET:base";
  Testutil.check_contains "column label" table "C:c2";
  Testutil.check_contains "marks" table "X";
  Testutil.check_contains "plain pp" (Mapping.Pretty.to_string mapping) "base -> c1, c2"

(* --- property: measured reduction never falls below 1 when every
   occurrence count >= 1 and fanout >= 1 --- *)

let prop_reduction_bounds =
  QCheck2.Test.make ~name:"with-ontology links never exceed per-occurrence links + slack"
    ~count:100
    QCheck2.Gen.(tup3 (int_range 1 30) (int_range 1 5) (int_range 1 20))
    (fun (event_types, fanout, reuse) ->
      let m =
        Mapping.Complexity.synthetic_mapping ~event_types ~fanout
          ~components:(max fanout 3)
      in
      let usage = Mapping.Complexity.synthetic_usage ~event_types ~occurrences_per_type:reuse in
      let c = Mapping.Complexity.measure m ~usage in
      (* with-ontology cost: n occurrences + ET*fanout definitions;
         without: n*fanout. The identity must hold exactly. *)
      c.Mapping.Complexity.with_ontology
      = c.Mapping.Complexity.occurrences + (event_types * fanout)
      && c.Mapping.Complexity.without_ontology = event_types * reuse * fanout)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "build operations" `Quick test_build;
    Alcotest.test_case "coverage: clean with inheritance" `Quick test_coverage_clean;
    Alcotest.test_case "coverage: each problem detected" `Quick test_coverage_problems;
    Alcotest.test_case "coverage summary" `Quick test_coverage_summary;
    Alcotest.test_case "complexity: measured counts" `Quick test_complexity_measure;
    Alcotest.test_case "complexity: reuse sweep monotone" `Quick test_complexity_sweep;
    Alcotest.test_case "traceability: impact" `Quick test_trace_impact;
    Alcotest.test_case "traceability: synchronization" `Quick test_trace_apply;
    Alcotest.test_case "XML round trip" `Quick test_xml_roundtrip;
    Alcotest.test_case "cross table (Table 1 shape)" `Quick test_pretty_table;
    QCheck_alcotest.to_alcotest prop_reduction_bounds;
  ]
