(* SOSAE command-line tool: validate, evaluate, tabulate, export.

   The paper's §8 describes SOSAE (Scenario and Ontology-based Software
   Architecture Evaluation) as an Eclipse plug-in under development;
   this is that tool, as a CLI. *)

open Cmdliner

let scenarios_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "scenarios" ] ~docv:"FILE" ~doc:"ScenarioML scenario-set XML file.")

let architecture_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "a"; "architecture" ] ~docv:"FILE" ~doc:"xADL-style architecture XML file.")

let mapping_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "m"; "mapping" ] ~docv:"FILE" ~doc:"Event-type-to-component mapping XML file.")

let load scenarios architecture mapping =
  Result.map_error Core.Sosae.load_error_to_string
    (Core.Sosae.load_project_result ~scenarios ~architecture ~mapping)

let or_die = function
  | Ok x -> x
  | Error msg ->
      prerr_endline ("sosae: " ^ msg);
      exit 2

(* ------------------------------ validate -------------------------- *)

let validate_cmd =
  let run scenarios architecture mapping =
    let p = or_die (load scenarios architecture mapping) in
    let v = Core.Sosae.validate p in
    Format.printf "%a@." Core.Sosae.pp_validation v;
    if v.Core.Sosae.ok then 0 else 1
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg) in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check ontology, scenarios, architecture, and mapping coverage.")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ evaluate -------------------------- *)

let policy_conv =
  Arg.enum [ ("routed", Adl.Graph.Routed); ("direct", Adl.Graph.Direct) ]

let policy_arg =
  Arg.(
    value & opt policy_conv Adl.Graph.Routed
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Communication path policy between successive events: $(b,routed) or $(b,direct).")

let scenario_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario" ] ~docv:"ID" ~doc:"Evaluate only the scenario with this id.")

let behavior_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "b"; "behavior" ] ~docv:"FILE"
        ~doc:
          "Statechart bundle XML ($(b,<archBehavior>)); when given, the behavioral \
           walkthrough runs after the static one.")

let load_behavior = function
  | None -> []
  | Some path -> (
      let text =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Statechart.Bundle.of_string text with
      | bundle -> bundle.Statechart.Bundle.charts
      | exception Statechart.Bundle.Malformed m ->
          prerr_endline ("sosae: in behavior file: " ^ m);
          exit 2)

let run_behavioral ?(quiet = false) p charts scenario =
  let r =
    Walkthrough.Dynamic.evaluate_scenario ~set:p.Core.Sosae.scenarios
      ~mapping:p.Core.Sosae.mapping ~charts scenario
  in
  if not quiet then Format.printf "%a@." Walkthrough.Dynamic.pp_result r;
  r.Walkthrough.Dynamic.ok

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Print machine-readable JSON verdicts instead of the Fig. 4-style report.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate scenarios on $(docv) parallel domains; $(b,0) (the default) picks \
           the machine's recommended domain count, $(b,1) forces the sequential path. \
           Verdicts and their order are identical for every $(docv).")

let resolve_jobs jobs = if jobs <= 0 then Core.Sosae.default_jobs () else jobs

let evaluate_cmd =
  let run scenarios architecture mapping policy scenario_id behavior json jobs =
    let p = or_die (load scenarios architecture mapping) in
    let charts = load_behavior behavior in
    let config = Walkthrough.Engine.config ~policy () in
    match scenario_id with
    | Some id -> (
        match Core.Sosae.evaluate_scenario ~config p id with
        | Some r ->
            if json then print_endline (Walkthrough.Report.scenario_result_to_json r)
            else Format.printf "%a@." Walkthrough.Report.pp_scenario_result r;
            let behavioral_ok =
              charts = []
              ||
              match Scenarioml.Scen.find p.Core.Sosae.scenarios id with
              | Some scenario -> run_behavioral ~quiet:json p charts scenario
              | None -> true
            in
            if Walkthrough.Verdict.is_consistent r && behavioral_ok then 0 else 1
        | None ->
            prerr_endline ("sosae: unknown scenario " ^ id);
            2)
    | None ->
        let r = Core.Sosae.evaluate ~config ~jobs:(resolve_jobs jobs) p in
        if json then print_endline (Walkthrough.Report.set_result_to_json r)
        else Format.printf "%a@." Walkthrough.Report.pp_set_result r;
        let behavioral_ok =
          charts = []
          || List.for_all
               (run_behavioral ~quiet:json p charts)
               p.Core.Sosae.scenarios.Scenarioml.Scen.scenarios
        in
        if r.Walkthrough.Engine.consistent && behavioral_ok then 0 else 1
  in
  let term =
    Term.(
      const run $ scenarios_arg $ architecture_arg $ mapping_arg $ policy_arg
      $ scenario_id_arg $ behavior_arg $ json_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Walk scenarios through the architecture and report verdicts.")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ session ---------------------------- *)

(* Repeated evaluation across architecture edits, the paper's §4.1
   evolution experiment as a workflow: evaluate, edit, re-evaluate —
   with unchanged verdicts served from the session cache. *)
let session_cmd =
  let run scenarios architecture mapping policy json jobs excisions then_files =
    let p = or_die (load scenarios architecture mapping) in
    let jobs = resolve_jobs jobs in
    let config = Walkthrough.Engine.config ~policy () in
    let session = Core.Sosae.Session.create ~config p in
    let print_round label result (before : Core.Sosae.Session.stats)
        (after : Core.Sosae.Session.stats) =
      if json then
        print_endline
          (Jsonlight.to_string
             (Jsonlight.Obj
                [
                  ("round", Jsonlight.String label);
                  ( "re_evaluated",
                    Jsonlight.Int (after.evaluations - before.evaluations) );
                  ( "served_from_cache",
                    Jsonlight.Int
                      (after.cache_hits - before.cache_hits
                      + (after.replay_hits - before.replay_hits)) );
                  ("result", Walkthrough.Report.json_of_set_result result);
                ]))
      else begin
        Printf.printf "-- %s --\n" label;
        List.iter
          (fun r -> print_endline ("  " ^ Walkthrough.Report.summary_line r))
          result.Walkthrough.Engine.results;
        Printf.printf "  re-evaluated %d scenario(s), served %d from cache\n"
          (after.evaluations - before.evaluations)
          (after.cache_hits - before.cache_hits + (after.replay_hits - before.replay_hits))
      end
    in
    let round label =
      let before = Core.Sosae.Session.stats session in
      let result = Core.Sosae.Session.evaluate ~jobs session in
      print_round label result before (Core.Sosae.Session.stats session);
      result
    in
    let initial = round "initial architecture" in
    let after_excisions =
      List.fold_left
        (fun _ (a, b) ->
          let current = (Core.Sosae.Session.project session).Core.Sosae.architecture in
          let doomed =
            List.filter
              (fun l ->
                let fa = l.Adl.Structure.link_from.Adl.Structure.anchor in
                let ta = l.Adl.Structure.link_to.Adl.Structure.anchor in
                (String.equal fa a && String.equal ta b)
                || (String.equal fa b && String.equal ta a))
              current.Adl.Structure.links
          in
          if doomed = [] then begin
            prerr_endline (Printf.sprintf "sosae: no link between %S and %S" a b);
            exit 2
          end;
          Core.Sosae.Session.apply_diff session
            (List.map (fun l -> Adl.Diff.Remove_link l.Adl.Structure.link_id) doomed);
          round (Printf.sprintf "after excising %s -- %s" a b))
        initial excisions
    in
    let final =
      List.fold_left
        (fun _ file ->
          let current = (Core.Sosae.Session.project session).Core.Sosae.architecture in
          let next =
            match
              Core.Sosae.load_project_result ~scenarios ~architecture:file ~mapping
            with
            | Ok p -> p.Core.Sosae.architecture
            | Error e ->
                prerr_endline ("sosae: " ^ Core.Sosae.load_error_to_string e);
                exit 2
          in
          Core.Sosae.Session.apply_diff session (Adl.Diff.diff current next);
          round (Printf.sprintf "after evolving to %s" file))
        after_excisions then_files
    in
    if not json then
      Format.printf "session: %a@." Core.Sosae.Session.pp_stats
        (Core.Sosae.Session.stats session);
    if final.Walkthrough.Engine.consistent then 0 else 1
  in
  let excise_arg =
    let brick_pair =
      Arg.conv
        ( (fun s ->
            match String.split_on_char ',' s with
            | [ a; b ] when a <> "" && b <> "" -> Ok (a, b)
            | _ -> Error (`Msg "expected two brick ids separated by a comma")),
          fun ppf (a, b) -> Format.fprintf ppf "%s,%s" a b )
    in
    Arg.(
      value & opt_all brick_pair []
      & info [ "excise" ] ~docv:"A,B"
          ~doc:
            "Excise every link between bricks $(docv) and re-evaluate incrementally \
             (repeatable, applied in order; the paper's Fig. 4 experiment).")
  in
  let then_arg =
    Arg.(
      value & opt_all file []
      & info [ "then" ] ~docv:"ARCH.xml"
          ~doc:
            "After the excisions, diff the current architecture against $(docv), apply \
             the edit script, and re-evaluate incrementally (repeatable).")
  in
  let term =
    Term.(
      const run $ scenarios_arg $ architecture_arg $ mapping_arg $ policy_arg $ json_arg
      $ jobs_arg $ excise_arg $ then_arg)
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Evaluate, apply architecture edits, and re-evaluate incrementally: unchanged \
          verdicts are served from the session cache.")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ table ----------------------------- *)

let table_cmd =
  let run scenarios architecture mapping =
    let p = or_die (load scenarios architecture mapping) in
    print_string (Mapping.Pretty.table_to_string p.Core.Sosae.mapping);
    0
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg) in
  Cmd.v
    (Cmd.info "table" ~doc:"Print the event-type/component cross table (paper Table 1).")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ stats ----------------------------- *)

let stats_cmd =
  let run scenarios architecture mapping =
    let p = or_die (load scenarios architecture mapping) in
    let stats = Scenarioml.Stats.of_set p.Core.Sosae.scenarios in
    Format.printf "%a@." Scenarioml.Stats.pp stats;
    let ontology = p.Core.Sosae.scenarios.Scenarioml.Scen.ontology in
    let counts =
      Mapping.Complexity.measure p.Core.Sosae.mapping ~usage:stats.Scenarioml.Stats.usage
    in
    Format.printf
      "mapping links with ontology: %d, without: %d (reduction factor %.2f)@."
      counts.Mapping.Complexity.with_ontology counts.Mapping.Complexity.without_ontology
      counts.Mapping.Complexity.reduction;
    Format.printf "%a@." Mapping.Coverage.pp_summary
      (Mapping.Coverage.summarize ontology p.Core.Sosae.architecture p.Core.Sosae.mapping);
    0
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Scenario statistics, event-type reuse, and mapping complexity numbers.")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ export-owl ------------------------ *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write Turtle here (default stdout).")

let export_owl_cmd =
  let run scenarios architecture mapping output =
    let p = or_die (load scenarios architecture mapping) in
    let store = Core.Sosae.export_owl p in
    let turtle = Semweb.Turtle.to_string store in
    (match output with
    | Some path ->
        let oc = open_out_bin path in
        output_string oc turtle;
        close_out oc
    | None -> print_string turtle);
    0
  in
  let term =
    Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg $ output_arg)
  in
  Cmd.v
    (Cmd.info "export-owl"
       ~doc:"Export the ontology and mapping as OWL triples in Turtle (paper §8).")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ report ----------------------------- *)

let report_cmd =
  let run scenarios architecture mapping output =
    let p = or_die (load scenarios architecture mapping) in
    let buf = Buffer.create 4096 in
    let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    let set = p.Core.Sosae.scenarios in
    line "# Architecture evaluation report";
    line "";
    line "- scenario set: **%s** (%d scenarios)" set.Scenarioml.Scen.set_name
      (List.length set.Scenarioml.Scen.scenarios);
    line "- architecture: **%s**%s" p.Core.Sosae.architecture.Adl.Structure.arch_name
      (match p.Core.Sosae.architecture.Adl.Structure.style with
      | Some style -> Printf.sprintf " (style: %s)" style
      | None -> "");
    line "- mapping: **%s** (%d entries, %d links)"
      p.Core.Sosae.mapping.Mapping.Types.mapping_id
      (List.length p.Core.Sosae.mapping.Mapping.Types.entries)
      (Mapping.Types.link_count p.Core.Sosae.mapping);
    line "";
    line "## Validation";
    line "";
    line "```";
    line "%s" (Format.asprintf "%a" Core.Sosae.pp_validation (Core.Sosae.validate p));
    line "```";
    line "";
    line "## Walkthrough verdicts";
    line "";
    let result = Core.Sosae.evaluate p in
    List.iter
      (fun sr ->
        line "- %s **%s** — %s%s"
          (if Walkthrough.Verdict.is_consistent sr then "✅" else "❌")
          sr.Walkthrough.Verdict.scenario_id sr.Walkthrough.Verdict.scenario_name
          (if sr.Walkthrough.Verdict.negative then " *(negative)*" else ""))
      result.Walkthrough.Engine.results;
    line "";
    if result.Walkthrough.Engine.style_violations <> [] then begin
      line "## Style and constraint violations";
      line "";
      List.iter
        (fun v -> line "- `%s`" (Format.asprintf "%a" Styles.Rule.pp_violation v))
        result.Walkthrough.Engine.style_violations;
      line ""
    end;
    List.iter
      (fun sr ->
        if not (Walkthrough.Verdict.is_consistent sr) then begin
          line "### Detail: %s" sr.Walkthrough.Verdict.scenario_id;
          line "";
          line "```";
          line "%s" (Walkthrough.Report.scenario_result_to_string sr);
          line "```";
          line ""
        end)
      result.Walkthrough.Engine.results;
    line "## Component coverage";
    line "";
    line "```";
    line "%s"
      (Walkthrough.Coverage_report.to_string
         (Walkthrough.Coverage_report.of_set_result p.Core.Sosae.architecture result));
    line "```";
    line "";
    line "## Scenario statistics";
    line "";
    line "```";
    let stats = Scenarioml.Stats.of_set set in
    line "%s" (Format.asprintf "%a" Scenarioml.Stats.pp stats);
    let counts =
      Mapping.Complexity.measure p.Core.Sosae.mapping ~usage:stats.Scenarioml.Stats.usage
    in
    line "mapping links with ontology: %d, without: %d (reduction %.2f)"
      counts.Mapping.Complexity.with_ontology counts.Mapping.Complexity.without_ontology
      counts.Mapping.Complexity.reduction;
    line "```";
    line "";
    line "Overall: %s"
      (if result.Walkthrough.Engine.consistent then "**CONSISTENT**"
       else "**INCONSISTENT**");
    (match output with
    | Some path ->
        let oc = open_out_bin path in
        Buffer.output_buffer oc buf;
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> print_string (Buffer.contents buf));
    if result.Walkthrough.Engine.consistent then 0 else 1
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the Markdown report here.")
  in
  let term =
    Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg $ output)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Produce a full Markdown evaluation report (validation, verdicts, coverage).")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ rank ------------------------------ *)

let rank_cmd =
  let run scenarios architecture mapping top =
    let p = or_die (load scenarios architecture mapping) in
    let ranking = Scenarioml.Rank.rank p.Core.Sosae.scenarios in
    List.iteri
      (fun i sc ->
        if i < top then Format.printf "%2d. %a@." (i + 1) Scenarioml.Rank.pp_score sc)
      ranking;
    0
  in
  let top =
    Arg.(
      value & opt int max_int
      & info [ "top" ] ~docv:"N" ~doc:"Only print the first $(docv) scenarios.")
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg $ top) in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Rank scenarios by marginal event-type coverage (evaluation priority).")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ implied ---------------------------- *)

let implied_cmd =
  let run scenarios architecture mapping =
    let p = or_die (load scenarios architecture mapping) in
    let candidates =
      Walkthrough.Implied.implied ~set:p.Core.Sosae.scenarios
        ~architecture:p.Core.Sosae.architecture ~mapping:p.Core.Sosae.mapping ()
    in
    Printf.printf "%d implied event-type successions (executable but never written):\n"
      (List.length candidates);
    List.iter
      (fun c -> Format.printf "  %a@." Walkthrough.Implied.pp_candidate c)
      candidates;
    0
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg) in
  Cmd.v
    (Cmd.info "implied"
       ~doc:
         "List event-type successions the architecture can execute but no scenario \
          exercises (paper 8, after Uchitel et al.).")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ coverage --------------------------- *)

let coverage_cmd =
  let run scenarios architecture mapping =
    let p = or_die (load scenarios architecture mapping) in
    let result = Core.Sosae.evaluate p in
    Format.printf "%a@."
      Walkthrough.Coverage_report.pp
      (Walkthrough.Coverage_report.of_set_result p.Core.Sosae.architecture result);
    0
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg) in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Report which components the scenario walkthroughs exercise.")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ dot -------------------------------- *)

let dot_cmd =
  let run architecture_file highlight =
    match Adl.Xml_io.of_string (
        let ic = open_in_bin architecture_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s)
    with
    | arch ->
        print_string (Adl.Dot.to_dot ~highlight arch);
        0
    | exception Adl.Xml_io.Malformed m ->
        prerr_endline ("sosae: " ^ m);
        2
  in
  let arch_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"ARCH.xml" ~doc:"xADL-style architecture XML file.")
  in
  let highlight =
    Arg.(
      value & opt_all string []
      & info [ "highlight" ] ~docv:"BRICK" ~doc:"Brick id to paint red (repeatable).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render an architecture as Graphviz DOT on stdout.")
    Term.(const Stdlib.exit $ (const run $ arch_pos $ highlight))

(* ------------------------------ relations -------------------------- *)

let relations_cmd =
  let run scenarios architecture mapping =
    let p = or_die (load scenarios architecture mapping) in
    let relations = Scenarioml.Relate.analyze p.Core.Sosae.scenarios in
    if relations = [] then print_endline "(no relationships found)"
    else
      List.iter
        (fun r -> Format.printf "%a@." Scenarioml.Relate.pp_relation r)
        relations;
    0
  in
  let term = Term.(const run $ scenarios_arg $ architecture_arg $ mapping_arg) in
  Cmd.v
    (Cmd.info "relations"
       ~doc:
         "Report relationships between scenarios: specializations, shared event types, \
          episode uses.")
    Term.(const Stdlib.exit $ term)

(* ------------------------------ prose ----------------------------- *)

let prose_cmd =
  let run file =
    let text =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Scenarioml.Text_io.of_prose text with
    | scenario ->
        print_string
          (Xmlight.Print.to_string
             (Xmlight.Doc.doc (Scenarioml.Xml_io.scenario_to_element scenario)));
        0
    | exception Scenarioml.Text_io.Prose_error msg ->
        prerr_endline ("sosae: " ^ msg);
        2
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Numbered prose scenario text file.")
  in
  Cmd.v
    (Cmd.info "prose"
       ~doc:"Convert a numbered prose scenario into ScenarioML XML (simple events).")
    Term.(const Stdlib.exit $ (const run $ file))

(* ------------------------------ demo ------------------------------ *)

let demo_cmd =
  let run which =
    (match which with
    | `Pims ->
        let set = Casestudies.Pims.scenario_set in
        let project =
          {
            Core.Sosae.scenarios = set;
            architecture = Casestudies.Pims.architecture;
            mapping = Casestudies.Pims.mapping;
          }
        in
        Format.printf "%a@." Core.Sosae.pp_validation (Core.Sosae.validate project);
        let r = Core.Sosae.evaluate project in
        List.iter
          (fun sr -> print_endline (Walkthrough.Report.summary_line sr))
          r.Walkthrough.Engine.results;
        print_endline "-- after excising the Loader / Data Access link (paper Fig. 4) --";
        let broken = { project with Core.Sosae.architecture = Casestudies.Pims.broken_architecture } in
        List.iter
          (fun id ->
            match Core.Sosae.evaluate_scenario broken id with
            | Some sr -> print_endline (Walkthrough.Report.summary_line sr)
            | None -> ())
          [ "create-portfolio"; "get-share-prices" ]
    | `Crash ->
        let project =
          {
            Core.Sosae.scenarios = Casestudies.Crash.entity_scenario_set;
            architecture = Casestudies.Crash.entity_architecture;
            mapping = Casestudies.Crash.entity_mapping;
          }
        in
        let r = Core.Sosae.evaluate project in
        List.iter
          (fun sr -> print_endline (Walkthrough.Report.summary_line sr))
          r.Walkthrough.Engine.results;
        print_endline "-- dynamic availability (with / without failure detector) --";
        let a1 = Casestudies.Crash_sim.run_availability ~detector:true in
        let a2 = Casestudies.Crash_sim.run_availability ~detector:false in
        Format.printf "detector on : %a@." Dsim.Checks.pp_availability
          a1.Casestudies.Crash_sim.verdict;
        Format.printf "detector off: %a@." Dsim.Checks.pp_availability
          a2.Casestudies.Crash_sim.verdict;
        print_endline "-- dynamic ordering (FIFO / non-FIFO channels) --";
        let o1 = Casestudies.Crash_sim.run_ordering ~fifo:true () in
        let o2 = Casestudies.Crash_sim.run_ordering ~fifo:false () in
        Format.printf "fifo    : %a@." Dsim.Checks.pp_ordering o1.Casestudies.Crash_sim.verdict;
        Format.printf "non-fifo: %a@." Dsim.Checks.pp_ordering o2.Casestudies.Crash_sim.verdict;
        print_endline "-- executing a message on the entity architecture --";
        let paths = Casestudies.Crash_behavior.run_message_paths () in
        Printf.printf "outgoing: %s -> network (%b)\n"
          (String.concat " -> " paths.Casestudies.Crash_behavior.outgoing_path)
          paths.Casestudies.Crash_behavior.outgoing_reached_network;
        print_endline "-- 7-peer crisis coordination --";
        let full = Casestudies.Crash_sim.run_coordination () in
        let degraded = Casestudies.Crash_sim.run_coordination ~down:[ "police-cc" ] () in
        Printf.printf "all up     : %d/%d acknowledged\n"
          full.Casestudies.Crash_sim.acknowledged full.Casestudies.Crash_sim.peers;
        Printf.printf "police down: %d/%d acknowledged\n"
          degraded.Casestudies.Crash_sim.acknowledged degraded.Casestudies.Crash_sim.peers);
    0
  in
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("pims", `Pims); ("crash", `Crash) ])) None
      & info [] ~docv:"CASE" ~doc:"$(b,pims) or $(b,crash).")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run a built-in case study end to end.")
    Term.(const Stdlib.exit $ (const run $ which))

(* ------------------------------ simulate -------------------------- *)

let simulate_cmd =
  let run which trials seed loss jobs json =
    let jobs = resolve_jobs jobs in
    let name, campaign =
      match which with
      | `Crash -> ("crash", Casestudies.Campaigns.crash_availability ~loss ())
      | `Pims -> ("pims", Casestudies.Campaigns.pims_price_feed ~loss ())
    in
    let started = Unix.gettimeofday () in
    let report = Dsim.Campaign.report ~jobs ~seed ~trials campaign in
    let elapsed = Unix.gettimeofday () -. started in
    (* Timing goes to stderr so stdout is bit-for-bit reproducible for
       a given case, seed, and trial count — whatever the job count. *)
    Printf.eprintf "%d trials in %.3fs (%.0f trials/s on %d jobs)\n%!" trials elapsed
      (if elapsed > 0.0 then float_of_int trials /. elapsed else 0.0)
      jobs;
    if json then
      print_endline
        (Jsonlight.to_string
           (Jsonlight.Obj
              [
                ("case", Jsonlight.String name);
                ("trials", Jsonlight.Int trials);
                ("seed", Jsonlight.Int seed);
                ("report", Dsim.Stats.to_json report);
              ]))
    else begin
      Printf.printf "campaign %s: %d trials, seed %d\n" name trials seed;
      Format.printf "%a@." Dsim.Stats.pp report
    end;
    0
  in
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("pims", `Pims); ("crash", `Crash) ])) None
      & info [] ~docv:"CASE" ~doc:"$(b,crash) or $(b,pims).")
  in
  let trials =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"N" ~doc:"Number of Monte-Carlo trials.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign seed. Each trial derives a splittable per-trial seed from it, so \
             results are bit-identical across runs and job counts.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P" ~doc:"Uniform message-loss probability in [0, 1).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run a Monte-Carlo dependability campaign on a built-in case study: sampled \
          fault plans (crash windows, downtimes, message loss) swept over N trials, \
          aggregated into availability / reliability / latency statistics with a \
          Wilson 95% confidence interval.")
    Term.(const Stdlib.exit $ (const run $ which $ trials $ seed $ loss $ jobs_arg $ json_arg))

(* ------------------------------ save-demo ------------------------- *)

let save_demo_cmd =
  let run dir =
    let project =
      {
        Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
        architecture = Casestudies.Pims.architecture;
        mapping = Casestudies.Pims.mapping;
      }
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Core.Sosae.save_project project
      ~scenarios:(Filename.concat dir "pims-scenarios.xml")
      ~architecture:(Filename.concat dir "pims-architecture.xml")
      ~mapping:(Filename.concat dir "pims-mapping.xml");
    let oc = open_out_bin (Filename.concat dir "pims-behavior.xml") in
    output_string oc
      (Statechart.Bundle.to_string
         (Statechart.Bundle.make ~id:"pims-behavior" Casestudies.Pims_behavior.charts));
    close_out oc;
    Printf.printf "wrote pims-{scenarios,architecture,mapping,behavior}.xml to %s\n" dir;
    0
  in
  let dir =
    Arg.(value & pos 0 string "." & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "save-demo"
       ~doc:"Write the PIMS case study as XML files (inputs for the other commands).")
    Term.(const Stdlib.exit $ (const run $ dir))

(* ------------------------------ simtest --------------------------- *)

let simtest_cmd =
  let run seed seeds ops replay =
    match replay with
    | Some tokens -> (
        match Simtest.Gen.ops_of_string tokens with
        | Error e ->
            Printf.eprintf "simtest: %s\n" e;
            2
        | Ok sequence -> (
            match Simtest.Sim.run_ops sequence with
            | Ok () ->
                Printf.printf "replay OK (%d ops)\n" (List.length sequence);
                0
            | Error f ->
                Format.printf "%a@." Simtest.Sim.report_failure (f, sequence);
                1))
    | None ->
        let failures = ref 0 in
        for s = seed to seed + seeds - 1 do
          match Simtest.Sim.run_seed ~seed:s ~ops with
          | Ok () -> Printf.printf "seed %d: OK (%d ops)\n%!" s ops
          | Error (f, sequence) ->
              incr failures;
              Format.printf "seed %d: %a@." s Simtest.Sim.report_failure
                (f, sequence)
        done;
        if !failures = 0 then 0 else 1
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"First seed.")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"K" ~doc:"Number of consecutive seeds to run.")
  in
  let ops =
    Arg.(
      value & opt int 200
      & info [ "ops" ] ~docv:"M" ~doc:"Operations per generated sequence.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"OPS"
          ~doc:
            "Replay an explicit op sequence (the token list a failing run \
             prints) instead of generating one.")
  in
  Cmd.v
    (Cmd.info "simtest"
       ~doc:
         "Deterministic simulation test: run the persistence/registry/\
          replication stack on a simulated disk through seeded operation \
          sequences with injected faults (torn writes, ENOSPC, failed fsyncs, \
          crashes), checking recovery and replication invariants after every \
          operation. Failing sequences are shrunk to a minimal replayable \
          repro.")
    Term.(const Stdlib.exit $ (const run $ seed $ seeds $ ops $ replay))

(* ------------------------------ serve ----------------------------- *)

let serve_cmd =
  let parse_replica_of = function
    | None -> Ok None
    | Some spec -> (
        match String.rindex_opt spec ':' with
        | None -> Error "--replica-of expects HOST:PORT"
        | Some i -> (
            let host = String.sub spec 0 i in
            let port = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt port with
            | Some p when p > 0 && host <> "" -> Ok (Some (host, p))
            | _ -> Error "--replica-of expects HOST:PORT"))
  in
  let run port host unix_path jobs workers queue timeout idle_timeout
      max_requests data_dir fsync group_window compact_threshold replica_of =
    match Store.Journal.fsync_policy_of_string fsync with
    | Error message ->
        Printf.eprintf "sosae serve: %s\n" message;
        1
    | Ok fsync -> (
        match parse_replica_of replica_of with
        | Error message ->
            Printf.eprintf "sosae serve: %s\n" message;
            1
        | Ok replica_of ->
        if group_window < 0.0 then begin
          Printf.eprintf "sosae serve: --group-commit-window must be >= 0\n";
          1
        end
        else if compact_threshold <= 0 then begin
          Printf.eprintf "sosae serve: --compact-threshold must be positive\n";
          1
        end
        else begin
          Server.Daemon.run
            ~config:
              {
                Server.Daemon.default_config with
                Server.Daemon.port;
                host;
                unix_path;
                jobs = (if jobs <= 0 then None else Some jobs);
                workers;
                queue_capacity = queue;
                read_timeout = timeout;
                write_timeout = timeout;
                idle_timeout;
                max_requests;
                data_dir;
                fsync;
                group_window = group_window /. 1000.0;
                compact_threshold;
                replica_of;
              }
            ();
          0
        end)
  in
  let port =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; $(b,0) picks an ephemeral port.")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let unix_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix" ] ~docv:"PATH"
          ~doc:"Also listen on a Unix-domain socket at $(docv).")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Worker threads serving requests.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Accepted-connection queue bound; connections beyond it are answered \
             $(b,429).")
  in
  let timeout =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection read and write timeout.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "How long a quiescent keep-alive connection may sit between \
             requests before the server closes it.")
  in
  let max_requests =
    Arg.(
      value & opt int 1000
      & info [ "max-requests" ] ~docv:"N"
          ~doc:
            "Requests served per connection before the server closes it \
             ($(b,Connection: close) on the last response); $(b,0) means \
             unlimited.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durability directory: every session mutation is journaled there \
             before it is acknowledged, and the state is recovered from it on \
             the next start (surviving crashes, including a torn journal \
             tail). Without this flag the registry is purely in-memory, as \
             before.")
  in
  let fsync =
    Arg.(
      value & opt string "always"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "When journal appends reach the disk (needs $(b,--data-dir)): \
             $(b,always) fsyncs every record (survives power loss), \
             $(b,interval:SECS) fsyncs at most once per $(i,SECS) seconds, \
             $(b,never) leaves it to the kernel (still survives a process \
             crash).")
  in
  let group_window =
    Arg.(
      value & opt float 0.0
      & info
          [ "group-commit-window" ]
          ~docv:"MS"
          ~doc:
            "Group-commit accumulation window in milliseconds (needs \
             $(b,--data-dir), matters with $(b,--fsync always)): how long the \
             batch leader waits for more concurrent writers before the shared \
             fsync. $(b,0) (the default) still batches writers that arrive \
             while an fsync is in flight — it just never delays an \
             uncontended one.")
  in
  let compact_threshold =
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info
          [ "compact-threshold" ]
          ~docv:"BYTES"
          ~doc:
            "Journal size past which the maintenance thread snapshots the \
             state and rotates the journal, off the request path (needs \
             $(b,--data-dir)).")
  in
  let replica_of =
    Arg.(
      value
      & opt (some string) None
      & info [ "replica-of" ] ~docv:"HOST:PORT"
          ~doc:
            "Boot as a read replica of the upstream at $(docv): continuously \
             tail its journal over $(b,GET /replication/log) — bootstrapping \
             from $(b,GET /replication/snapshot) when starting fresh — and \
             serve reads ($(b,GET)s, evaluate, diff previews) from the \
             applied copy. Mutations are rejected with $(b,421) naming the \
             upstream. $(b,SIGUSR1) promotes the replica to a primary that \
             accepts mutations. Combine with $(b,--data-dir) for a durable \
             replica: shipped batches are journaled locally, restarts resume \
             from the local frontier, the node serves the replication \
             endpoints to chained replicas (the upstream may itself be a \
             replica), and promotion yields an immediately durable primary.")
  in
  let term =
    Term.(
      const run $ port $ host $ unix_path $ jobs_arg $ workers $ queue $ timeout
      $ idle_timeout $ max_requests $ data_dir $ fsync $ group_window
      $ compact_threshold $ replica_of)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the evaluation server: named sessions with cached verdicts over \
          HTTP (create sessions, evaluate suites, apply architecture diffs, read \
          stats and metrics). Stops cleanly on SIGTERM/SIGINT; with \
          $(b,--data-dir) the sessions survive restarts and crashes via a \
          write-ahead journal, and $(b,--replica-of HOST:PORT) boots a read \
          replica fed from such a primary.")
    Term.(const Stdlib.exit $ term)

let () =
  let info =
    Cmd.info "sosae" ~version:Core.Sosae.version
      ~doc:"Scenario and Ontology-based Software Architecture Evaluation"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            validate_cmd;
            evaluate_cmd;
            session_cmd;
            table_cmd;
            stats_cmd;
            export_owl_cmd;
            report_cmd;
            rank_cmd;
            relations_cmd;
            implied_cmd;
            coverage_cmd;
            dot_cmd;
            prose_cmd;
            demo_cmd;
            simulate_cmd;
            simtest_cmd;
            save_demo_cmd;
            serve_cmd;
          ]))
